"""The fused scheme-reduction engine shared by the cycle simulators.

Every two-sided scheme reduces per-(chunk, position, filter) match counts
to three per-position arrays: ``barrier`` (the cluster's wall cycles --
the slowest unit per filter group per chunk, floored at one cycle per
broadcast and at the GB-H routing floor), ``busy`` (occupied MAC slots)
and ``permute`` (unhidden routing cycles). The schemes differ only in how
filters map onto unit rows:

- **no-GB / sorted**: one filter per row, groups of ``units`` rows in a
  fixed order (:func:`order_groups`).
- **GB-S**: one static collocated pair per row (:func:`static_pairs`).
- **GB-H**: pairs re-derived per chunk, plus per-(chunk, group) routing
  floors from the permutation network (:func:`chunk_pairs`,
  :func:`gb_h_route_floors`).
- **dynamic dispatch**: groups of ``2 x units`` filters with the
  list-scheduling makespan bound ``max(ceil(sum/units), max)``
  (:func:`order_groups` with ``dyn_units``).
- **one-sided**: no counts at all -- every unit does the input chunk's
  popcount (:func:`one_sided`).

:class:`GroupReduction` captures that mapping as index tensors; one
engine (:func:`reduce_scheme`) then evaluates any of them through three
interchangeable, bit-identical paths:

1. native ``reduce_pairs`` over a materialized counts tensor;
2. native ``fused_reduce_pairs`` straight from the bit-packed masks --
   the ``(n_chunks, n_sel, F)`` counts tensor is **never materialized**
   (one ``n_filters``-element scratch row lives per call);
3. a blocked NumPy fallback (gather via ``np.take_along_axis``, reshape
   to ``(.., n_groups, rows_per_group)``, max/sum) for either input.

Exactness: match counts are <= ``chunk_size`` and every group sum is far
below 2**53, so all arithmetic is exact integer math in any of int64,
float32-GEMM or float64 -- accumulation order cannot change a ULP, which
is what lets ``REPRO_FUSE`` modes promise byte-identical figures.

``REPRO_FUSE`` selects when workloads keep the counts tensor:

- ``auto`` (default): fuse only when the native engine is available and
  the counts tensor would be large (``REPRO_FUSE_AUTO_BYTES``, default
  64 MiB) -- small workloads keep counts for cheap reuse.
- ``on``: never materialize counts (the NumPy fallback streams blocks).
- ``off``: always materialize counts (the pre-engine behaviour).

Dispatches are observable as ``kernel.reduce_native_dispatch`` /
``kernel.reduce_fallback_dispatch`` telemetry counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.sim import native

__all__ = [
    "GroupReduction",
    "Reduction",
    "fuse_mode",
    "fusion_active",
    "order_groups",
    "static_pairs",
    "chunk_pairs",
    "gb_h_route_floors",
    "reduce_scheme",
    "one_sided",
    "counts_from_packed",
]

#: Gathered unit-work elements per NumPy fallback block (bounds the
#: temporary to ~32 MB of int64 regardless of layer size).
_BLOCK_ELEMS = 4 << 20

#: Default REPRO_FUSE=auto threshold: fuse when the counts tensor would
#: exceed this many bytes.
_AUTO_FUSE_BYTES = 64 << 20


def fuse_mode() -> str:
    """The active ``REPRO_FUSE`` mode (``auto``/``on``/``off``)."""
    # Lazy: repro.core.__init__ imports the simulators, which import us.
    from repro.core.env import env_choice

    return env_choice("REPRO_FUSE", "auto", ("auto", "on", "off"))


def fusion_active(counts_nbytes: int) -> bool:
    """Whether a workload whose counts tensor would occupy *counts_nbytes*
    should skip materializing it and carry packed masks instead."""
    mode = fuse_mode()
    if mode == "off":
        return False
    if mode == "on":
        return True
    from repro.core.env import env_int

    return native.available() and counts_nbytes >= env_int(
        "REPRO_FUSE_AUTO_BYTES", _AUTO_FUSE_BYTES, minimum=0
    )


@dataclass(frozen=True)
class GroupReduction:
    """A scheme's filter-to-unit-row mapping, as index tensors.

    Attributes:
        pair_a: (1, n_rows) or (n_chunks, n_rows) int64 first-filter
            index per unit row; -1 = absent (idle slot).
        pair_b: same shape; the collocated second filter, -1 = none.
        rows_per_group: unit rows sharing one barrier (a filter group).
        floors: (n_chunks, n_groups) float64 per-(chunk, group) barrier
            floors (GB-H routing throughput), or ``None``.
        dyn_units: when > 0, each group's barrier is additionally bounded
            below by ``ceil(group_sum / dyn_units)`` (the dynamic-dispatch
            makespan bound).
    """

    pair_a: np.ndarray
    pair_b: np.ndarray
    rows_per_group: int
    floors: np.ndarray | None = None
    dyn_units: int = 0

    @property
    def n_rows(self) -> int:
        return int(self.pair_a.shape[-1])

    @property
    def n_groups(self) -> int:
        return self.n_rows // self.rows_per_group

    @property
    def per_chunk(self) -> bool:
        return self.pair_a.shape[0] > 1

    def __post_init__(self) -> None:
        if self.pair_a.shape != self.pair_b.shape:
            raise ValueError("pair_a/pair_b shapes differ")
        if self.n_rows % self.rows_per_group:
            raise ValueError(
                f"{self.n_rows} rows not a multiple of group {self.rows_per_group}"
            )
        if self.floors is not None and self.floors.shape[-1] != self.n_groups:
            raise ValueError("floors last dim must be n_groups")


@dataclass(frozen=True)
class Reduction:
    """Per-position reduction outputs (all float64, exact integers)."""

    barrier: np.ndarray
    busy: np.ndarray
    permute: np.ndarray


def order_groups(
    order: np.ndarray, rows_per_group: int, dyn_units: int = 0
) -> GroupReduction:
    """One filter per row in *order*, padded with -1 to whole groups."""
    order = np.asarray(order, dtype=np.int64)
    n = order.size
    n_rows = -(-n // rows_per_group) * rows_per_group
    pair_a = np.full((1, n_rows), -1, dtype=np.int64)
    pair_a[0, :n] = order
    pair_b = np.full((1, n_rows), -1, dtype=np.int64)
    return GroupReduction(pair_a, pair_b, rows_per_group, None, dyn_units)


def static_pairs(pairing: np.ndarray, units: int) -> GroupReduction:
    """GB-S: one (n_pairs, 2) pairing shared by every chunk."""
    pairing = np.asarray(pairing, dtype=np.int64)
    pair_a = np.ascontiguousarray(pairing[None, :, 0])
    pair_b = np.ascontiguousarray(pairing[None, :, 1])
    return GroupReduction(pair_a, pair_b, units)


def chunk_pairs(
    chunk_pairing: np.ndarray, units: int, floors: np.ndarray | None = None
) -> GroupReduction:
    """GB-H: per-chunk (n_chunks, n_pairs, 2) pairing, optional floors."""
    chunk_pairing = np.asarray(chunk_pairing, dtype=np.int64)
    pair_a = np.ascontiguousarray(chunk_pairing[:, :, 0])
    pair_b = np.ascontiguousarray(chunk_pairing[:, :, 1])
    return GroupReduction(pair_a, pair_b, units, floors)


def gb_h_route_floors(
    chunk_pairing: np.ndarray, units: int, bisection_width: int
) -> np.ndarray:
    """Per-(chunk, group) routing-throughput floors for GB-H.

    A unit ships its two accumulated partials only when its pair
    assignment changes before the next chunk; all ``2 x units`` sums
    flush after the last chunk. About half the shipped values cross the
    bisection, so a chunk shipping ``m`` values needs
    ``ceil(m / 2 / bisection_width)`` cycles of network throughput.
    Vectorised over all chunks and groups at once (the pre-engine code
    recomputed this per group inside a Python loop).
    """
    n_chunks, n_pairs, _ = chunk_pairing.shape
    n_groups = n_pairs // units
    cp = chunk_pairing.reshape(n_chunks, n_groups, units, 2)
    shipped = np.zeros((n_chunks, n_groups), dtype=np.float64)
    if n_chunks > 1:
        changed = cp[1:] != cp[:-1]
        shipped[:-1] = changed.sum(axis=(2, 3))
    shipped[-1] = 2.0 * units
    return np.ascontiguousarray(np.ceil(shipped / 2.0 / bisection_width))


def one_sided(input_pop: np.ndarray, n_filters: int, units: int) -> Reduction:
    """The one-sided scheme: every unit does the input chunk's popcount.

    ``barrier`` is the per-position wall cycles across all filter-group
    passes; ``busy`` is the per-position input non-zero total (the
    occupied slots are ``busy x n_filters``, which the caller owns).
    """
    pop = input_pop.astype(np.float64)
    n_groups = int(np.ceil(n_filters / units))
    barrier = np.maximum(pop, 1).sum(axis=0) * n_groups
    busy = pop.sum(axis=0)
    return Reduction(barrier, busy, np.zeros_like(barrier))


def reduce_scheme(work, rspec: GroupReduction) -> Reduction:
    """Evaluate one scheme's reduction over a workload's chunk work.

    *work* is a :class:`repro.sim.kernels.ChunkWork`; whichever of
    ``work.counts`` (materialized) or ``work.packed`` (fused) is present
    selects the input path. All paths are bit-identical.
    """
    if work.counts is not None:
        got = native.reduce_pairs(
            work.counts,
            rspec.pair_a,
            rspec.pair_b,
            rspec.floors,
            rspec.rows_per_group,
            rspec.dyn_units,
        )
        if got is not None:
            telemetry.count("kernel.reduce_native_dispatch")
            return Reduction(*got)
        telemetry.count("kernel.reduce_fallback_dispatch")
        return _reduce_counts_numpy(work.counts, rspec)
    packed = getattr(work, "packed", None)
    if packed is None:
        raise ValueError("workload carries neither counts nor packed masks")
    got = native.fused_reduce_pairs(
        packed.win_words,
        packed.filt_words,
        packed.filt_words.shape[2],
        rspec.pair_a,
        rspec.pair_b,
        rspec.floors,
        rspec.rows_per_group,
        rspec.dyn_units,
    )
    if got is not None:
        telemetry.count("kernel.reduce_native_dispatch")
        return Reduction(*got)
    telemetry.count("kernel.reduce_fallback_dispatch")
    return _reduce_packed_numpy(packed, rspec)


def _block_chunks(n_chunks: int, n_sel: int, n_rows: int) -> int:
    """Chunks per fallback block so the gathered temp stays bounded."""
    return max(1, _BLOCK_ELEMS // max(1, n_sel * n_rows))


def _reduce_counts_numpy(counts: np.ndarray, rspec: GroupReduction) -> Reduction:
    """Blocked NumPy reduction over a materialized counts tensor."""
    n_chunks, n_sel, _ = counts.shape
    barrier = np.zeros(n_sel, dtype=np.float64)
    busy = np.zeros(n_sel, dtype=np.float64)
    permute = np.zeros(n_sel, dtype=np.float64)
    step = _block_chunks(n_chunks, n_sel, rspec.n_rows)
    for lo in range(0, n_chunks, step):
        hi = min(lo + step, n_chunks)
        _reduce_block(counts[lo:hi], lo, hi, rspec, barrier, busy, permute)
    return Reduction(barrier, busy, permute)


def _reduce_packed_numpy(packed, rspec: GroupReduction) -> Reduction:
    """Blocked NumPy reduction straight from the packed masks.

    Each block of chunks is unpacked to booleans, multiplied into exact
    integer match counts via float32 GEMM, reduced, and discarded -- the
    full counts tensor never exists.
    """
    w64 = packed.win_words
    n_chunks, n_sel, _ = w64.shape
    n_filters = packed.filt_words.shape[2]
    barrier = np.zeros(n_sel, dtype=np.float64)
    busy = np.zeros(n_sel, dtype=np.float64)
    permute = np.zeros(n_sel, dtype=np.float64)
    step = _block_chunks(n_chunks, n_sel, max(rspec.n_rows, n_filters))
    for lo in range(0, n_chunks, step):
        hi = min(lo + step, n_chunks)
        cb = _counts_block(packed, lo, hi)
        _reduce_block(cb, lo, hi, rspec, barrier, busy, permute)
    return Reduction(barrier, busy, permute)


def _reduce_block(
    cb: np.ndarray,
    lo: int,
    hi: int,
    rspec: GroupReduction,
    barrier: np.ndarray,
    busy: np.ndarray,
    permute: np.ndarray,
) -> None:
    """Reduce one (hi-lo, n_sel, F) integer counts block into the accs."""
    n_sel = cb.shape[1]
    idx_a = rspec.pair_a[lo:hi] if rspec.per_chunk else rspec.pair_a
    idx_b = rspec.pair_b[lo:hi] if rspec.per_chunk else rspec.pair_b
    w = _gather_rows(cb, idx_a) + _gather_rows(cb, idx_b)
    w = w.reshape(hi - lo, n_sel, rspec.n_groups, rspec.rows_per_group)
    gsum = w.sum(axis=3)
    bi = w.max(axis=3)
    if rspec.dyn_units > 0:
        np.maximum(bi, (gsum + rspec.dyn_units - 1) // rspec.dyn_units, out=bi)
    np.maximum(bi, 1, out=bi)
    bg = bi.astype(np.float64)
    if rspec.floors is not None:
        fl = rspec.floors[lo:hi, None, :]
        unhidden = np.maximum(0.0, fl - bg)
        permute += unhidden.sum(axis=(0, 2))
        np.maximum(bg, fl, out=bg)
    barrier += bg.sum(axis=(0, 2))
    busy += gsum.sum(axis=(0, 2), dtype=np.float64)


def _gather_rows(cb: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """counts[..., idx] as int64 with -1 indices contributing zero."""
    gathered = np.take_along_axis(
        cb, np.maximum(idx, 0)[:, None, :], axis=2
    ).astype(np.int64)
    gathered *= idx[:, None, :] >= 0
    return gathered


def _counts_block(packed, lo: int, hi: int) -> np.ndarray:
    """Exact match counts for chunks [lo, hi) from the packed masks."""
    chunk = packed.chunk_size
    n_filters = packed.filt_words.shape[2]
    wb = packed.win_words[lo:hi].view(np.uint8)
    win_bits = np.unpackbits(wb, axis=-1, count=chunk)
    fb = packed.filt_words[lo:hi].view(np.uint8)
    b, words = fb.shape[0], packed.filt_words.shape[1]
    filt_bits = np.unpackbits(
        np.ascontiguousarray(
            fb.reshape(b, words, n_filters, 8).transpose(0, 2, 1, 3)
        ).reshape(b, n_filters, words * 8),
        axis=-1,
        count=chunk,
    )
    # float32 GEMM over booleans is exact: counts <= chunk_size << 2**24.
    prod = np.matmul(
        win_bits.astype(np.float32), filt_bits.transpose(0, 2, 1).astype(np.float32)
    )
    return prod.astype(np.int64)


def counts_from_packed(packed) -> np.ndarray:
    """Regenerate the full counts tensor from packed masks (exact).

    For the few consumers that genuinely need per-filter counts (balance
    oracles, traces, characterisation) when the workload was fused.
    """
    from repro.sim.kernels import count_dtype

    dtype = count_dtype(packed.chunk_size)
    n_filters = packed.filt_words.shape[2]
    got = native.match_counts(packed.win_words, packed.filt_words, n_filters, dtype)
    if got is not None:
        return got[0]
    n_chunks, n_sel, _ = packed.win_words.shape
    counts = np.empty((n_chunks, n_sel, n_filters), dtype=dtype)
    step = _block_chunks(n_chunks, n_sel, n_filters)
    for lo in range(0, n_chunks, step):
        hi = min(lo + step, n_chunks)
        counts[lo:hi] = _counts_block(packed, lo, hi)
    return counts
