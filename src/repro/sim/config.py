"""Hardware configurations (paper Table 2 and Section 4).

Two sizes, with equal multiply-accumulate (MAC) counts across
architectures so performance differences stem from architecture alone:

========  =====================  ==================  ==========
arch      MACs/cluster            clusters            buffer/MAC
========  =====================  ==================  ==========
Dense     32 (large) 16 (small)  32 (large) 16 (sm)  8 B
SCNN      16                     64 (large) 16 (sm)  1.63 KB
SparTen   32 (large) 16 (small)  32 (large) 16 (sm)  0.97 KB
========  =====================  ==================  ==========

AlexNet and VGGNet use the large configuration, GoogLeNet the small one.
Simulations use a mini-batch of 16; ``position_sample`` optionally caps
the output positions simulated per cluster (evenly-spaced sampling with
exact rescaling) to keep large layers fast -- exact when ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nets.models import NetworkSpec

__all__ = [
    "HardwareConfig",
    "LARGE_CONFIG",
    "SMALL_CONFIG",
    "FPGA_CONFIG",
    "config_for",
]


@dataclass(frozen=True)
class HardwareConfig:
    """One simulated machine configuration.

    Attributes:
        name: configuration label.
        n_clusters: SparTen/Dense clusters.
        units_per_cluster: MACs (compute units) per cluster.
        chunk_size: SparseMap width (positions per chunk).
        bisection_width: permutation-network bisection (values/cycle).
        scnn_pe_grid: SCNN's PE array (rows, cols); 16 MACs per PE.
        scnn_mult_rows / scnn_mult_cols: SCNN's per-PE multiplier array
            (4x4 takes 4 inputs x 4 weights per cycle).
        scnn_output_group: filters processed together per PE (8).
        scnn_max_tile: SCNN's input-tile side cap (the methodology's 6x6;
            smaller maps use ceil(H/grid) so every PE is assignable).
        scnn_accumulators: per-PE accumulator banks (1K).
        batch: mini-batch size (images per simulation).
        position_sample: max output positions simulated per cluster
            (``None`` = exact). Sampling is evenly spaced and rescaled.
        memory_bytes_per_cycle: off-chip bandwidth for roofline models
            (``None`` = compute-bound simulation, the ASIC assumption).
    """

    name: str
    n_clusters: int
    units_per_cluster: int
    chunk_size: int = 128
    bisection_width: int = 4
    scnn_pe_grid: tuple[int, int] = (8, 8)
    scnn_mult_rows: int = 4
    scnn_mult_cols: int = 4
    scnn_output_group: int = 8
    scnn_max_tile: int = 6
    scnn_accumulators: int = 1024
    batch: int = 1
    position_sample: int | None = None
    memory_bytes_per_cycle: float | None = None

    def __post_init__(self) -> None:
        if self.n_clusters < 1 or self.units_per_cluster < 1:
            raise ValueError(f"{self.name}: cluster geometry must be positive")
        if self.chunk_size < 1 or self.batch < 1:
            raise ValueError(f"{self.name}: chunk size and batch must be positive")
        if self.position_sample is not None and self.position_sample < 1:
            raise ValueError(f"{self.name}: position_sample must be >= 1")

    @property
    def total_macs(self) -> int:
        """MACs in the SparTen/Dense machine (equal to SCNN's by design)."""
        return self.n_clusters * self.units_per_cluster

    @property
    def scnn_n_pes(self) -> int:
        return self.scnn_pe_grid[0] * self.scnn_pe_grid[1]

    @property
    def scnn_macs_per_pe(self) -> int:
        return self.scnn_mult_rows * self.scnn_mult_cols

    @property
    def scnn_total_macs(self) -> int:
        return self.scnn_n_pes * self.scnn_macs_per_pe

    def with_sampling(self, position_sample: int | None, batch: int | None = None) -> "HardwareConfig":
        """A copy with different sampling/batch (benchmark speed knobs)."""
        kwargs = {"position_sample": position_sample}
        if batch is not None:
            kwargs["batch"] = batch
        return replace(self, **kwargs)


#: Aggressive configuration (AlexNet, VGGNet): 1024 MACs.
LARGE_CONFIG = HardwareConfig(
    name="large",
    n_clusters=32,
    units_per_cluster=32,
    scnn_pe_grid=(8, 8),
)

#: Scaled-down configuration (GoogLeNet): 256 MACs.
SMALL_CONFIG = HardwareConfig(
    name="small",
    n_clusters=16,
    units_per_cluster=16,
    scnn_pe_grid=(4, 4),
)

#: The FPGA prototype: one 32-unit cluster at 50 MHz with 2.8 Gbps SDRAM.
#: Peak bandwidth is 2.8e9 / 8 bytes/s over 50e6 cycles/s = 7 bytes per
#: cycle; the *sustained* rate over chunk-grained random accesses on the
#: DE2's shared 16-bit SDRAM (controller overheads, row misses, the Nios
#: soft core on the same bus) is far lower. 0.6 B/cycle is the calibrated
#: effective bandwidth that reproduces the paper's observation that FPGA
#: speedups sit slightly below simulation because sparse schemes become
#: memory-bound (compute shrinks quadratically, traffic only linearly).
FPGA_CONFIG = HardwareConfig(
    name="fpga",
    n_clusters=1,
    units_per_cluster=32,
    memory_bytes_per_cycle=0.6,
)


def config_for(network: NetworkSpec) -> HardwareConfig:
    """The paper's configuration choice for a benchmark network."""
    if network.config_name == "large":
        return LARGE_CONFIG
    if network.config_name == "small":
        return SMALL_CONFIG
    raise ValueError(f"unknown config name {network.config_name!r}")
