"""Dynamic filter dispatch: the alternative to GB the paper argues against.

Section 3.3: "instead of GB, dynamically dispatching filters to idle
compute units (1) would result in more filter movement (i.e., loss of
filter reuse) and (2) is unlikely to perform as well as GB which
statically collocates appropriate filter pairs."

This simulator quantifies both halves of that claim. Per (position,
chunk), an idealised dynamic scheduler assigns the group's filter chunks
to units to minimise the makespan; we model it with the standard
list-scheduling bounds, giving the *optimistic* end of what dynamic
dispatch could achieve:

    makespan >= max(ceil(total_work / units), max_single_work)

(the LPT guarantee puts real schedulers within 4/3 of this, so an actual
dynamic machine sits between this model and GB). The price is filter
movement: a unit's resident filter chunk changes almost every step, so
filter chunks stream per (position, chunk) instead of being fetched once
and reused across the whole output slice -- counted in
``extras["filter_refetch_bytes"]`` against the static scheme's
``extras["filter_resident_bytes"]``.
"""

from __future__ import annotations

import numpy as np

from repro import profiling, telemetry
from repro.arch.memory import layer_traffic
from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import LayerData
from repro.sim import reduce
from repro.sim.config import HardwareConfig
from repro.sim.kernels import ChunkWork, batch_workloads
from repro.sim.results import Breakdown, LayerResult, observability_extras

__all__ = ["simulate_dynamic_dispatch"]


def simulate_dynamic_dispatch(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    data: LayerData | None = None,
    work: ChunkWork | None = None,
    seed: int = 0,
) -> LayerResult:
    """Simulate idealised dynamic filter dispatch on the SparTen fabric.

    Uses the same chunk-level match counts as the SparTen simulator but
    replaces the static filter->unit assignment with the per-chunk
    makespan lower bound, and accounts the filter-movement traffic the
    paper warns about.
    """
    units = cfg.units_per_cluster
    n_clusters = cfg.n_clusters

    mode = profiling.profile_mode()
    profile = mode != profiling.MODE_OFF
    bins = profiling.timeline_bins() if mode == profiling.MODE_TIMELINE else 0

    cluster_cycles = np.zeros(n_clusters, dtype=np.float64)
    nonzero = 0.0
    intra = 0.0
    refetch_bytes = 0.0
    if profile:
        busy_c = np.zeros(n_clusters, dtype=np.float64)
        wait_c = np.zeros(n_clusters, dtype=np.float64)
        tl_cycles = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None
        tl_busy = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None

    for img_data, img_work in batch_workloads(
        spec, cfg, seed, data, work, need_counts=True
    ):
        weights = img_work.assignment.weight_of
        cluster_of = img_work.assignment.cluster_of
        n_chunks = img_work.n_chunks
        n_filters = img_data.spec.n_filters

        # Same residency as GB's collocation: 2 x units filters per pass,
        # each pass bounded by the list-scheduling makespan
        # max(ceil(total / units), peak) and one cycle per broadcast.
        rspec = reduce.order_groups(
            np.arange(n_filters, dtype=np.int64), 2 * units, dyn_units=units
        )
        red = reduce.reduce_scheme(img_work, rspec)
        per_pos_barrier = red.barrier
        per_pos_busy = red.busy

        cluster_cycles += np.bincount(
            cluster_of, weights=per_pos_barrier * weights, minlength=n_clusters
        )
        nonzero += float(np.sum(per_pos_busy * weights))
        intra += float(np.sum((per_pos_barrier * units - per_pos_busy) * weights))
        if profile:
            busy_c += np.bincount(
                cluster_of, weights=per_pos_busy * weights, minlength=n_clusters
            )
            wait_c += np.bincount(
                cluster_of,
                weights=(per_pos_barrier * units - per_pos_busy) * weights,
                minlength=n_clusters,
            )
            if bins:
                img_tl_cycles, img_tl_busy = profiling.positional_timeline(
                    cluster_of,
                    per_pos_barrier * weights,
                    per_pos_busy * weights,
                    n_clusters,
                    bins,
                )
                tl_cycles += img_tl_cycles
                tl_busy += img_tl_busy

        # Filter movement: every (position, chunk, unit-slot) fetches a
        # chunk's mask + values instead of holding it resident. Use the
        # mean filter-chunk payload.
        mean_chunk_values = float(img_work.filter_chunk_nnz.mean())
        chunk_payload = cfg.chunk_size / 8.0 + mean_chunk_values  # mask + values
        fetches = float(np.sum(weights)) * n_chunks * min(units, n_filters)
        refetch_bytes += fetches * chunk_payload * n_clusters / n_clusters

    layer_cycles = float(cluster_cycles.max())
    inter = float(np.sum((layer_cycles - cluster_cycles) * units))
    breakdown = Breakdown(
        nonzero_macs=nonzero, zero_macs=0.0, intra_loss=intra, inter_loss=inter
    )
    base_traffic = layer_traffic(spec, "two_sided", chunk_size=cfg.chunk_size)
    # What the static scheme moves for filters: each chunk fetched once.
    from repro.arch.memory import layer_traffic_detailed

    _inp, filter_t, _out = layer_traffic_detailed(
        spec, "two_sided", chunk_size=cfg.chunk_size
    )
    resident_bytes = filter_t.total_bytes
    extras = observability_extras(breakdown)
    telemetry.count("sim.sparten_dynamic.layers")
    telemetry.count("sim.sparten_dynamic.cycles", layer_cycles)
    telemetry.gauge("sim.sparten_dynamic.mac_utilization", extras["mac_utilization"])
    counters = None
    if profile:
        counters = profiling.CounterSet(
            scheme="sparten_dynamic",
            n_clusters=n_clusters,
            units_per_cluster=units,
            total_cycles=layer_cycles,
            busy=busy_c,
            filter_zero=np.zeros(n_clusters, dtype=np.float64),
            barrier_wait=wait_c,
            permute_stall=np.zeros(n_clusters, dtype=np.float64),
            imbalance_idle=(layer_cycles - cluster_cycles) * units,
            memory_stall=np.zeros(n_clusters, dtype=np.float64),
            timeline_cycles=tl_cycles,
            timeline_busy=tl_busy,
        )
    result = LayerResult(
        scheme="sparten_dynamic",
        layer_name=spec.name,
        cycles=layer_cycles,
        compute_cycles=layer_cycles,
        total_macs=cfg.total_macs,
        breakdown=breakdown,
        traffic=base_traffic,
        extras={
            **extras,
            "filter_refetch_bytes": refetch_bytes,
            "filter_resident_bytes": resident_bytes,
            "idealised": True,
        },
        counters=counters,
    )
    profiling.record_layer(result)
    return result
