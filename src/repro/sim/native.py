"""Optional compiled AND+popcount kernel for chunk match counts.

The hot quantity in every simulator is the per-(chunk, position, filter)
match count -- the popcount of the AND of two bit-packed masks. BLAS can
compute it as a float32 GEMM over the unpacked booleans, but that moves
``64x`` more data than the packed words need; a tiny C kernel doing
``popcount(window_word & filter_word)`` directly runs several times
faster, using AVX-512 ``VPOPCNTQ`` when the build machine supports it.

The C source below is embedded and compiled on demand with the system C
compiler into a cache directory (``$REPRO_NATIVE_DIR``, else
``$XDG_CACHE_HOME/repro/native``), keyed by a hash of the source and
compiler so rebuilds happen only when either changes. Everything is
best-effort: no compiler, a failed build, or ``$REPRO_NO_NATIVE`` being
set all make :func:`match_counts` return ``None`` and the caller falls
back to the GEMM path. Both paths are bit-identical (exact small-integer
arithmetic), which the tests assert.

Data layout contract (all C-contiguous):

- windows: ``(n_chunks, n_sel, words)`` uint64, row-major packed masks.
- filters: ``(n_chunks, words, n_filters)`` uint64, *word-major* so the
  inner loop over filters streams consecutive memory.
- counts out: ``(n_chunks, n_sel, n_filters)`` u8/u16/u32.
- pos_sums out: ``(n_sel,)`` int64 -- total matches per position across
  all chunks and filters (the kernel accumulates them for free).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = [
    "available",
    "load_error",
    "match_counts",
    "reduce_pairs",
    "fused_reduce_pairs",
]

_C_SOURCE = r"""
#include <stdint.h>

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
#include <immintrin.h>
#define REPRO_AVX512_POPCNT 1
#endif

/* Match counts for one layer: counts[c][p][f] = popcount(win[c][p] & filt[c][f])
   with filters stored word-major (filt[c][k][f]) so the f loop is unit-stride.
   pos_sums[p] accumulates the row totals (match_sums) on the fly. */

#define DEFINE_SCALAR_KERNEL(T, SUFFIX)                                        \
void match_counts_##SUFFIX(const uint64_t *win, const uint64_t *filt,          \
                           T *counts, int64_t *pos_sums,                       \
                           int64_t n_chunks, int64_t n_sel,                    \
                           int64_t n_filters, int64_t words)                   \
{                                                                              \
    for (int64_t c = 0; c < n_chunks; ++c) {                                   \
        const uint64_t *fbase = filt + c * words * n_filters;                  \
        for (int64_t p = 0; p < n_sel; ++p) {                                  \
            const uint64_t *w = win + (c * n_sel + p) * words;                 \
            T *out = counts + (c * n_sel + p) * n_filters;                     \
            int64_t row_sum = 0;                                               \
            for (int64_t f = 0; f < n_filters; ++f) {                          \
                uint64_t acc = 0;                                              \
                for (int64_t k = 0; k < words; ++k)                            \
                    acc += (uint64_t)__builtin_popcountll(                     \
                        w[k] & fbase[k * n_filters + f]);                      \
                out[f] = (T)acc;                                               \
                row_sum += (int64_t)acc;                                       \
            }                                                                  \
            pos_sums[p] += row_sum;                                            \
        }                                                                      \
    }                                                                          \
}

DEFINE_SCALAR_KERNEL(uint16_t, u16)
DEFINE_SCALAR_KERNEL(uint32_t, u32)

/* ---- scheme reductions -------------------------------------------------
   Per (chunk, position): gather each unit row's work as the sum of its
   (up to two) collocated filters' match counts, reduce groups of
   rows_per_group rows to a barrier (max over rows, optionally the
   list-scheduling bound max(ceil(sum/dyn_units), max), floored at 1 and
   at the per-(chunk, group) routing floor), and accumulate per-position
   barrier / busy / unhidden-permute totals. All quantities are exact
   small integers in float64 accumulators, so the result is bit-identical
   regardless of chunk/group iteration order.

   pair_a/pair_b: (n_chunks, n_rows) when pair_per_chunk, else (1, n_rows);
   -1 marks an absent filter (idle unit slot). floors: (n_chunks, n_groups)
   or NULL. Outputs barrier/busy/permute: (n_sel,) float64, accumulated. */

#define DEFINE_REDUCE_KERNEL(T, SUFFIX)                                        \
void reduce_pairs_##SUFFIX(const T *counts, const int64_t *pair_a,             \
                           const int64_t *pair_b, const double *floors,        \
                           double *barrier_acc, double *busy_acc,              \
                           double *permute_acc,                                \
                           int64_t n_chunks, int64_t n_sel,                    \
                           int64_t n_filters, int64_t n_rows,                  \
                           int64_t rows_per_group, int64_t pair_per_chunk,     \
                           int64_t dyn_units)                                  \
{                                                                              \
    int64_t n_groups = n_rows / rows_per_group;                                \
    for (int64_t c = 0; c < n_chunks; ++c) {                                   \
        const int64_t *pa = pair_a + (pair_per_chunk ? c * n_rows : 0);        \
        const int64_t *pb = pair_b + (pair_per_chunk ? c * n_rows : 0);        \
        const double *fl = floors ? floors + c * n_groups : (const double *)0; \
        for (int64_t p = 0; p < n_sel; ++p) {                                  \
            const T *row = counts + (c * n_sel + p) * n_filters;               \
            double bar = 0.0, busy = 0.0, perm = 0.0;                          \
            for (int64_t g = 0; g < n_groups; ++g) {                           \
                const int64_t *ga = pa + g * rows_per_group;                   \
                const int64_t *gb = pb + g * rows_per_group;                   \
                int64_t gmax = 0, gsum = 0;                                    \
                for (int64_t r = 0; r < rows_per_group; ++r) {                 \
                    int64_t w = 0;                                             \
                    if (ga[r] >= 0) w += (int64_t)row[ga[r]];                  \
                    if (gb[r] >= 0) w += (int64_t)row[gb[r]];                  \
                    gsum += w;                                                 \
                    if (w > gmax) gmax = w;                                    \
                }                                                              \
                int64_t bi = gmax;                                             \
                if (dyn_units > 0) {                                           \
                    int64_t lb = (gsum + dyn_units - 1) / dyn_units;           \
                    if (lb > bi) bi = lb;                                      \
                }                                                              \
                if (bi < 1) bi = 1;                                            \
                double bg = (double)bi;                                        \
                if (fl && fl[g] > bg) {                                        \
                    perm += fl[g] - bg;                                        \
                    bg = fl[g];                                                \
                }                                                              \
                bar += bg;                                                     \
                busy += (double)gsum;                                          \
            }                                                                  \
            barrier_acc[p] += bar;                                             \
            busy_acc[p] += busy;                                               \
            permute_acc[p] += perm;                                            \
        }                                                                      \
    }                                                                          \
}

DEFINE_REDUCE_KERNEL(uint8_t, u8)
DEFINE_REDUCE_KERNEL(uint16_t, u16)
DEFINE_REDUCE_KERNEL(uint32_t, u32)

/* Fused match + reduce: the (n_chunks, n_sel, F) counts tensor is never
   materialized. Per (chunk, position) the match counts for all filters
   are computed from the packed masks into a caller-provided scratch row
   (n_filters int32), then reduced exactly like reduce_pairs. */

static void row_match_counts(const uint64_t *w, const uint64_t *fbase,
                             int32_t *scratch, int64_t n_filters,
                             int64_t words)
{
    int64_t f = 0;
#ifdef REPRO_AVX512_POPCNT
    for (; f + 8 <= n_filters; f += 8) {
        __m512i acc = _mm512_setzero_si512();
        for (int64_t k = 0; k < words; ++k) {
            __m512i fv = _mm512_loadu_si512(
                (const void *)(fbase + k * n_filters + f));
            __m512i wv = _mm512_set1_epi64((long long)w[k]);
            acc = _mm512_add_epi64(
                acc, _mm512_popcnt_epi64(_mm512_and_si512(fv, wv)));
        }
        _mm256_storeu_si256((__m256i *)(scratch + f),
                            _mm512_cvtepi64_epi32(acc));
    }
#endif
    for (; f < n_filters; ++f) {
        uint64_t acc = 0;
        for (int64_t k = 0; k < words; ++k)
            acc += (uint64_t)__builtin_popcountll(
                w[k] & fbase[k * n_filters + f]);
        scratch[f] = (int32_t)acc;
    }
}

void fused_reduce_pairs(const uint64_t *win, const uint64_t *filt,
                        int32_t *scratch, const int64_t *pair_a,
                        const int64_t *pair_b, const double *floors,
                        double *barrier_acc, double *busy_acc,
                        double *permute_acc,
                        int64_t n_chunks, int64_t n_sel, int64_t n_filters,
                        int64_t words, int64_t n_rows,
                        int64_t rows_per_group, int64_t pair_per_chunk,
                        int64_t dyn_units)
{
    int64_t n_groups = n_rows / rows_per_group;
    for (int64_t c = 0; c < n_chunks; ++c) {
        const uint64_t *fbase = filt + c * words * n_filters;
        const int64_t *pa = pair_a + (pair_per_chunk ? c * n_rows : 0);
        const int64_t *pb = pair_b + (pair_per_chunk ? c * n_rows : 0);
        const double *fl = floors ? floors + c * n_groups : (const double *)0;
        for (int64_t p = 0; p < n_sel; ++p) {
            const uint64_t *w = win + (c * n_sel + p) * words;
            row_match_counts(w, fbase, scratch, n_filters, words);
            double bar = 0.0, busy = 0.0, perm = 0.0;
            for (int64_t g = 0; g < n_groups; ++g) {
                const int64_t *ga = pa + g * rows_per_group;
                const int64_t *gb = pb + g * rows_per_group;
                int64_t gmax = 0, gsum = 0;
                for (int64_t r = 0; r < rows_per_group; ++r) {
                    int64_t work = 0;
                    if (ga[r] >= 0) work += (int64_t)scratch[ga[r]];
                    if (gb[r] >= 0) work += (int64_t)scratch[gb[r]];
                    gsum += work;
                    if (work > gmax) gmax = work;
                }
                int64_t bi = gmax;
                if (dyn_units > 0) {
                    int64_t lb = (gsum + dyn_units - 1) / dyn_units;
                    if (lb > bi) bi = lb;
                }
                if (bi < 1) bi = 1;
                double bg = (double)bi;
                if (fl && fl[g] > bg) {
                    perm += fl[g] - bg;
                    bg = fl[g];
                }
                bar += bg;
                busy += (double)gsum;
            }
            barrier_acc[p] += bar;
            busy_acc[p] += busy;
            permute_acc[p] += perm;
        }
    }
}

#ifdef REPRO_AVX512_POPCNT
/* uint8 counts are the common case (chunk_size <= 255): vectorise over 8
   filters at a time with VPOPCNTQ on the word-major filter rows. */
void match_counts_u8(const uint64_t *win, const uint64_t *filt,
                     uint8_t *counts, int64_t *pos_sums,
                     int64_t n_chunks, int64_t n_sel,
                     int64_t n_filters, int64_t words)
{
    for (int64_t c = 0; c < n_chunks; ++c) {
        const uint64_t *fbase = filt + c * words * n_filters;
        for (int64_t p = 0; p < n_sel; ++p) {
            const uint64_t *w = win + (c * n_sel + p) * words;
            uint8_t *out = counts + (c * n_sel + p) * n_filters;
            int64_t row_sum = 0;
            int64_t f = 0;
            __m512i vsum = _mm512_setzero_si512();
            for (; f + 8 <= n_filters; f += 8) {
                __m512i acc = _mm512_setzero_si512();
                for (int64_t k = 0; k < words; ++k) {
                    __m512i fv = _mm512_loadu_si512(
                        (const void *)(fbase + k * n_filters + f));
                    __m512i wv = _mm512_set1_epi64((long long)w[k]);
                    acc = _mm512_add_epi64(
                        acc, _mm512_popcnt_epi64(_mm512_and_si512(fv, wv)));
                }
                vsum = _mm512_add_epi64(vsum, acc);
                _mm_storel_epi64((__m128i *)(out + f),
                                 _mm512_cvtepi64_epi8(acc));
            }
            row_sum += (int64_t)_mm512_reduce_add_epi64(vsum);
            for (; f < n_filters; ++f) {
                uint64_t acc = 0;
                for (int64_t k = 0; k < words; ++k)
                    acc += (uint64_t)__builtin_popcountll(
                        w[k] & fbase[k * n_filters + f]);
                out[f] = (uint8_t)acc;
                row_sum += (int64_t)acc;
            }
            pos_sums[p] += row_sum;
        }
    }
}
#else
DEFINE_SCALAR_KERNEL(uint8_t, u8)
#endif
"""

#: Compiler flag sets, tried in order until one builds.
_FLAG_SETS = (
    ["-O3", "-march=native", "-funroll-loops"],
    ["-O3"],
)

_lib: ctypes.CDLL | None = None
_tried = False
_error: str | None = None


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def _cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return pathlib.Path(override)
    base = os.environ.get("XDG_CACHE_HOME", "~/.cache")
    return pathlib.Path(base).expanduser() / "repro" / "native"


def _build(cc: str) -> ctypes.CDLL:
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256((_C_SOURCE + cc).encode()).hexdigest()[:16]
    lib_path = cache / f"matchkernel-{digest}.so"
    if not lib_path.exists():
        src_path = cache / f"matchkernel-{digest}.c"
        src_path.write_text(_C_SOURCE)
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".so.tmp")
        os.close(fd)
        last = ""
        try:
            for flags in _FLAG_SETS:
                cmd = [cc, "-shared", "-fPIC", *flags, "-o", tmp, str(src_path)]
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=180
                )
                if proc.returncode == 0:
                    os.replace(tmp, lib_path)
                    break
                last = proc.stderr.strip()
            else:
                raise RuntimeError(f"compile failed: {last}")
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    return ctypes.CDLL(str(lib_path))


def _load() -> ctypes.CDLL | None:
    global _lib, _tried, _error
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if _tried:
        return _lib
    _tried = True
    from repro import telemetry

    try:
        cc = _compiler()
        if cc is None:
            raise RuntimeError("no C compiler on PATH")
        with telemetry.span("native_build"):
            lib = _build(cc)
        args = [ctypes.c_void_p] * 4 + [ctypes.c_int64] * 4
        for name in ("match_counts_u8", "match_counts_u16", "match_counts_u32"):
            fn = getattr(lib, name)
            fn.restype = None
            fn.argtypes = args
        reduce_args = [ctypes.c_void_p] * 7 + [ctypes.c_int64] * 7
        for name in ("reduce_pairs_u8", "reduce_pairs_u16", "reduce_pairs_u32"):
            fn = getattr(lib, name)
            fn.restype = None
            fn.argtypes = reduce_args
        fn = lib.fused_reduce_pairs
        fn.restype = None
        fn.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_int64] * 8
        _lib = lib
    except (OSError, RuntimeError, subprocess.TimeoutExpired, AttributeError) as exc:
        _error = str(exc)
        _lib = None
        telemetry.count("kernel.native_unavailable")
        telemetry.get_logger("native").warning(
            "native kernel unavailable, GEMM fallback %s",
            telemetry.kv(error=_error),
        )
    return _lib


def available() -> bool:
    """Whether the compiled kernel is usable right now."""
    return _load() is not None


def load_error() -> str | None:
    """The build/load failure message, if the native path is unavailable."""
    _load()
    return _error


def match_counts(
    win_words: np.ndarray,
    filt_words: np.ndarray,
    n_filters: int,
    count_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Run the compiled kernel; ``None`` when unavailable.

    Returns ``(counts, pos_sums)`` per the module's layout contract.
    """
    lib = _load()
    if lib is None:
        return None
    n_chunks, n_sel, words = win_words.shape
    assert win_words.flags.c_contiguous and win_words.dtype == np.uint64
    assert filt_words.flags.c_contiguous and filt_words.dtype == np.uint64
    assert filt_words.shape == (n_chunks, words, n_filters)
    dt = np.dtype(count_dtype)
    fn = {
        1: lib.match_counts_u8,
        2: lib.match_counts_u16,
        4: lib.match_counts_u32,
    }[dt.itemsize]
    counts = np.empty((n_chunks, n_sel, n_filters), dtype=dt)
    pos_sums = np.zeros(n_sel, dtype=np.int64)
    fn(
        win_words.ctypes.data_as(ctypes.c_void_p),
        filt_words.ctypes.data_as(ctypes.c_void_p),
        counts.ctypes.data_as(ctypes.c_void_p),
        pos_sums.ctypes.data_as(ctypes.c_void_p),
        n_chunks,
        n_sel,
        n_filters,
        words,
    )
    return counts, pos_sums


def _ptr(arr: np.ndarray | None) -> ctypes.c_void_p | None:
    return None if arr is None else arr.ctypes.data_as(ctypes.c_void_p)


def reduce_pairs(
    counts: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    floors: np.ndarray | None,
    rows_per_group: int,
    dyn_units: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Group-reduce a materialized counts tensor; ``None`` when unavailable.

    Returns per-position ``(barrier, busy, permute)`` float64 arrays per
    the reduction contract documented in the C source.
    """
    lib = _load()
    if lib is None:
        return None
    counts = np.ascontiguousarray(counts)
    n_chunks, n_sel, n_filters = counts.shape
    n_rows = pair_a.shape[-1]
    assert pair_a.flags.c_contiguous and pair_a.dtype == np.int64
    assert pair_b.flags.c_contiguous and pair_b.dtype == np.int64
    assert pair_a.shape == pair_b.shape and n_rows % rows_per_group == 0
    per_chunk = pair_a.ndim == 2 and pair_a.shape[0] == n_chunks
    if floors is not None:
        assert floors.flags.c_contiguous and floors.dtype == np.float64
        assert floors.shape == (n_chunks, n_rows // rows_per_group)
    fn = {
        1: lib.reduce_pairs_u8,
        2: lib.reduce_pairs_u16,
        4: lib.reduce_pairs_u32,
    }[counts.dtype.itemsize]
    barrier = np.zeros(n_sel, dtype=np.float64)
    busy = np.zeros(n_sel, dtype=np.float64)
    permute = np.zeros(n_sel, dtype=np.float64)
    fn(
        _ptr(counts),
        _ptr(pair_a),
        _ptr(pair_b),
        _ptr(floors),
        _ptr(barrier),
        _ptr(busy),
        _ptr(permute),
        n_chunks,
        n_sel,
        n_filters,
        n_rows,
        rows_per_group,
        1 if per_chunk else 0,
        dyn_units,
    )
    return barrier, busy, permute


def fused_reduce_pairs(
    win_words: np.ndarray,
    filt_words: np.ndarray,
    n_filters: int,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    floors: np.ndarray | None,
    rows_per_group: int,
    dyn_units: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Fused match+reduce from packed masks; ``None`` when unavailable.

    The ``(n_chunks, n_sel, n_filters)`` counts tensor is never
    materialized: each (chunk, position) row of match counts lives only
    in an ``n_filters``-element scratch buffer.
    """
    lib = _load()
    if lib is None:
        return None
    n_chunks, n_sel, words = win_words.shape
    n_rows = pair_a.shape[-1]
    assert win_words.flags.c_contiguous and win_words.dtype == np.uint64
    assert filt_words.flags.c_contiguous and filt_words.dtype == np.uint64
    assert filt_words.shape == (n_chunks, words, n_filters)
    assert pair_a.flags.c_contiguous and pair_a.dtype == np.int64
    assert pair_b.flags.c_contiguous and pair_b.dtype == np.int64
    assert pair_a.shape == pair_b.shape and n_rows % rows_per_group == 0
    per_chunk = pair_a.ndim == 2 and pair_a.shape[0] == n_chunks
    if floors is not None:
        assert floors.flags.c_contiguous and floors.dtype == np.float64
        assert floors.shape == (n_chunks, n_rows // rows_per_group)
    scratch = np.empty(n_filters, dtype=np.int32)
    barrier = np.zeros(n_sel, dtype=np.float64)
    busy = np.zeros(n_sel, dtype=np.float64)
    permute = np.zeros(n_sel, dtype=np.float64)
    lib.fused_reduce_pairs(
        _ptr(win_words),
        _ptr(filt_words),
        _ptr(scratch),
        _ptr(pair_a),
        _ptr(pair_b),
        _ptr(floors),
        _ptr(barrier),
        _ptr(busy),
        _ptr(permute),
        n_chunks,
        n_sel,
        n_filters,
        words,
        n_rows,
        rows_per_group,
        1 if per_chunk else 0,
        dyn_units,
    )
    return barrier, busy, permute
