"""The SparTen cycle-level simulator (paper Sections 3.2-3.3, 4).

Models a machine of ``n_clusters`` clusters of ``units_per_cluster``
asynchronous compute units. Output positions are sliced contiguously
across clusters; within a cluster, every filter group is processed for
every owned position, chunk by chunk, with an implicit barrier at each
input-chunk broadcast: the cluster's time for a chunk is the slowest
unit's match count (what greedy balancing equalises).

Variants (all through one code path, selected by arguments):

- ``sided="two"`` with ``variant`` in {"no_gb", "gb_s", "gb_h"} -- the
  SparTen family. GB-S/GB-H collocate filter pairs per unit (groups of
  ``2 x units``); GB-H re-pairs per chunk and pays the (hidable)
  permutation-network latency.
- ``sided="one"`` -- only the feature map is sparse (filters dense), the
  proxy for Cnvlutin / Cambricon-X / EIE idling: every unit's chunk work
  is the input chunk's non-zero count, so there is no imbalance, but
  filter zeros burn multiplies.

The simulator also captures residual load imbalance after GB (the paper's
"any residual load imbalance even after greedy balancing") because the
barrier maxima are computed from the *actual* per-position match counts,
while GB pairs by the offline density proxy.
"""

from __future__ import annotations

import numpy as np

from repro import profiling, telemetry
from repro.arch.memory import layer_traffic
from repro.arch.permute import PermutationNetwork
from repro.balance.greedy import (
    BalancePlan,
    collocation_helps,
    gb_h_plan,
    gb_s_plan,
    no_gb_plan,
)
from repro.nets.synthesis import LayerData
from repro.nets.layers import ConvLayerSpec
from repro.sim import reduce
from repro.sim.config import HardwareConfig
from repro.sim.kernels import ChunkWork, batch_workloads
from repro.sim.results import Breakdown, LayerResult, observability_extras

__all__ = [
    "simulate_sparten",
    "sparten_variant_plan",
    "two_sided_reduction_spec",
    "SCHEME_NAMES",
]

#: Scheme label per (sided, variant).
SCHEME_NAMES = {
    ("one", None): "one_sided",
    ("two", "no_gb"): "sparten_no_gb",
    ("two", "gb_s"): "sparten_gb_s",
    ("two", "gb_h"): "sparten",
}


def sparten_variant_plan(
    data: LayerData, cfg: HardwareConfig, variant: str
) -> BalancePlan:
    """Build the greedy-balancing plan for a variant.

    Collocation is part of the GB plans regardless of filter count; the
    paper's static too-few-filters check is applied (optionally) by the
    simulator via ``auto_disable_collocation``, not here, so the plan
    always reflects the variant's mechanics.
    """
    units = cfg.units_per_cluster
    masks = data.filter_masks
    if variant == "no_gb":
        return no_gb_plan(masks, units)
    if variant not in ("gb_s", "gb_h"):
        raise ValueError(f"unknown variant {variant!r}")
    if variant == "gb_s":
        return gb_s_plan(masks, units)
    return gb_h_plan(masks, units, chunk_size=cfg.chunk_size)


def simulate_sparten(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    variant: str = "gb_h",
    sided: str = "two",
    data: LayerData | None = None,
    work: ChunkWork | None = None,
    seed: int = 0,
    auto_disable_collocation: bool = False,
) -> LayerResult:
    """Simulate one layer on SparTen (or its one-sided configuration).

    Args:
        spec: the layer. A workload is synthesised from (spec, seed) per
            batch image unless *data*/*work* supply it (single image).
        cfg: hardware configuration; ``cfg.batch`` images are simulated
            and their cluster cycles accumulate (clusters process the
            batch's images back to back).
        variant: ``"no_gb"``, ``"gb_s"`` or ``"gb_h"`` (two-sided only).
        sided: ``"two"`` or ``"one"``.
        data / work: pre-synthesised workload and its chunk work (reuse
            across variants -- they share the expensive mask matmuls).
        seed: base image seed for the batch.
        auto_disable_collocation: apply the paper's *static check* and
            fall back to sorted-but-unpaired execution when the layer has
            too few filters for pairing (Section 3.3). The paper's own
            evaluation runs with the check off -- Figure 8's 5x5-reduce
            layers show the resulting half-idle clusters -- so the
            default here is ``False``; the ablation bench sweeps it.
    """
    if sided not in ("one", "two"):
        raise ValueError(f"sided must be 'one' or 'two', got {sided!r}")
    scheme = SCHEME_NAMES[(sided, variant if sided == "two" else None)]
    units = cfg.units_per_cluster
    n_clusters = cfg.n_clusters

    mode = profiling.profile_mode()
    profile = mode != profiling.MODE_OFF
    bins = profiling.timeline_bins() if mode == profiling.MODE_TIMELINE else 0

    cluster_cycles = np.zeros(n_clusters, dtype=np.float64)
    nonzero = 0.0
    zero = 0.0
    intra = 0.0
    permute_total = 0.0
    barriers_total = 0.0
    if profile:
        busy_c = np.zeros(n_clusters, dtype=np.float64)
        zero_c = np.zeros(n_clusters, dtype=np.float64)
        wait_c = np.zeros(n_clusters, dtype=np.float64)
        permute_c = np.zeros(n_clusters, dtype=np.float64)
        hwm: dict[str, float] = {}
        tl_cycles = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None
        tl_busy = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None

    for img_data, img_work in batch_workloads(
        spec, cfg, seed, data, work, need_counts=(sided == "two")
    ):
        if sided == "two":
            stats = _two_sided_cluster_cycles(
                img_data, img_work, cfg, variant, auto_disable_collocation
            )
        else:
            stats = _one_sided_cluster_cycles(img_data, img_work, cfg)
        cluster_cycles += stats["cluster_cycles"]
        nonzero += stats["nonzero"]
        zero += stats["zero"]
        intra += stats["intra"]
        permute_total += stats.get("permute", 0.0)
        barriers_total += stats.get("barriers", 0.0)
        if profile:
            weights = img_work.assignment.weight_of
            cluster_of = img_work.assignment.cluster_of
            barrier = stats["per_pos_barrier"]
            slots = stats["per_pos_slots"]
            useful = stats["per_pos_useful"]
            permute_slots = stats["per_pos_permute"] * units
            busy_c += np.bincount(
                cluster_of, weights=useful * weights, minlength=n_clusters
            )
            zero_c += np.bincount(
                cluster_of, weights=(slots - useful) * weights, minlength=n_clusters
            )
            wait_c += np.bincount(
                cluster_of,
                weights=(barrier * units - slots - permute_slots) * weights,
                minlength=n_clusters,
            )
            permute_c += np.bincount(
                cluster_of, weights=permute_slots * weights, minlength=n_clusters
            )
            hwm_entries = {
                "input_chunk_values": float(img_work.input_pop.max(initial=0)),
                "filter_chunk_values": float(
                    img_work.filter_chunk_nnz.max(initial=0)
                ),
                "output_collector_entries": float(
                    2 * units if stats.get("collocated") else units
                ),
            }
            for key, value in hwm_entries.items():
                hwm[key] = max(hwm.get(key, value), value)
            if bins:
                img_tl_cycles, img_tl_busy = profiling.positional_timeline(
                    cluster_of, barrier * weights, slots * weights, n_clusters, bins
                )
                tl_cycles += img_tl_cycles
                tl_busy += img_tl_busy

    layer_cycles = float(cluster_cycles.max())
    inter = float(np.sum((layer_cycles - cluster_cycles) * units))
    breakdown = Breakdown(
        nonzero_macs=nonzero, zero_macs=zero, intra_loss=intra, inter_loss=inter
    )
    traffic = layer_traffic(
        spec,
        scheme="one_sided" if sided == "one" else "two_sided",
        chunk_size=cfg.chunk_size,
    )
    # Per-simulator observability: utilization is useful MACs over all
    # MAC-cycles; the idle terms split the paper's intra/inter losses
    # (inter = the load-imbalance idle the greedy balancers target).
    extras = observability_extras(breakdown)
    telemetry.count(f"sim.{scheme}.layers")
    telemetry.count(f"sim.{scheme}.cycles", layer_cycles)
    telemetry.gauge(f"sim.{scheme}.mac_utilization", extras["mac_utilization"])
    counters = None
    if profile:
        counters = profiling.CounterSet(
            scheme=scheme,
            n_clusters=n_clusters,
            units_per_cluster=units,
            total_cycles=layer_cycles,
            busy=busy_c,
            filter_zero=zero_c,
            barrier_wait=wait_c,
            permute_stall=permute_c,
            imbalance_idle=(layer_cycles - cluster_cycles) * units,
            memory_stall=np.zeros(n_clusters, dtype=np.float64),
            barriers=barriers_total,
            buffer_hwm=hwm,
            timeline_cycles=tl_cycles,
            timeline_busy=tl_busy,
        )
    result = LayerResult(
        scheme=scheme,
        layer_name=spec.name,
        cycles=layer_cycles,
        compute_cycles=layer_cycles,
        total_macs=cfg.total_macs,
        breakdown=breakdown,
        traffic=traffic,
        extras={
            **extras,
            "permute_cycles": permute_total,
            "barriers": barriers_total,
            "variant": variant if sided == "two" else None,
        },
        counters=counters,
    )
    profiling.record_layer(result)
    return result


def two_sided_reduction_spec(
    plan: BalancePlan, cfg: HardwareConfig, collocate: bool
) -> reduce.GroupReduction:
    """The reduction-engine spec for a SparTen variant's plan.

    GB-H routes partial sums through the thinned, pipelined network.
    A unit only ships its accumulated partials when its pair assignment
    *changes* for the next chunk (unchanged pairs accumulate locally);
    all 2 x units sums flush after the last chunk. Stage latency hides
    under the next chunk's compute; what cannot hide is *throughput*:
    about half the shipped values cross the bisection, so a chunk that
    ships ``m`` values needs ``ceil(m / 2 / bisection_width)`` cycles --
    the paper's "8 4-value batches" example for 32 values at width 4.
    Those per-(chunk, group) floors ride along in the spec; the shortfall
    below them stalls the whole cluster (unhidden permute cycles).
    """
    units = cfg.units_per_cluster
    if collocate and plan.variant == "gb_s":
        return reduce.static_pairs(plan.pairing, units)
    if collocate and plan.variant == "gb_h":
        floors = None
        if units >= 2:
            PermutationNetwork(units, bisection_width=cfg.bisection_width)  # validates
            floors = reduce.gb_h_route_floors(
                plan.chunk_pairing, units, cfg.bisection_width
            )
        return reduce.chunk_pairs(plan.chunk_pairing, units, floors)
    return reduce.order_groups(plan.order, units)


def _two_sided_cluster_cycles(
    data: LayerData,
    work: ChunkWork,
    cfg: HardwareConfig,
    variant: str,
    auto_disable_collocation: bool = False,
) -> dict:
    """Cluster cycle totals and breakdown terms for the SparTen variants."""
    units = cfg.units_per_cluster
    n_filters = data.spec.n_filters
    weights = work.assignment.weight_of  # (n_sel,)
    cluster_of = work.assignment.cluster_of

    plan = sparten_variant_plan(data, cfg, variant)
    collocate = plan.collocated
    if auto_disable_collocation and not collocation_helps(n_filters, units):
        collocate = False

    # One engine pass per scheme: barrier = max unit work per filter
    # group per chunk (>= 1 cycle per broadcast, >= the GB-H routing
    # floor), accumulated per position over all chunks and groups.
    rspec = two_sided_reduction_spec(plan, cfg, collocate)
    red = reduce.reduce_scheme(work, rspec)
    per_pos_barrier = red.barrier  # sum over groups+chunks
    per_pos_busy = red.busy  # sum of unit work
    per_pos_permute = red.permute  # unhidden routing

    # Per-cluster wall cycles: weighted sum of per-position barriers.
    cluster_cycles = np.bincount(
        cluster_of, weights=per_pos_barrier * weights, minlength=cfg.n_clusters
    )
    nonzero = float(np.sum(per_pos_busy * weights))
    intra = float(np.sum((per_pos_barrier * units - per_pos_busy) * weights))

    return {
        "cluster_cycles": cluster_cycles,
        "nonzero": nonzero,
        "zero": 0.0,
        "intra": intra,
        "permute": float(per_pos_permute.sum()),
        "barriers": float(rspec.n_groups * work.n_chunks),
        "collocated": collocate,
        # Per-position views for the hardware counters: occupied slots
        # equal useful work (every two-sided multiply is effectual).
        "per_pos_barrier": per_pos_barrier,
        "per_pos_slots": per_pos_busy,
        "per_pos_useful": per_pos_busy,
        "per_pos_permute": per_pos_permute,
    }


def _one_sided_cluster_cycles(
    data: LayerData, work: ChunkWork, cfg: HardwareConfig
) -> dict:
    """Cluster cycle totals for the one-sided configuration.

    Every unit processes the input chunk's non-zero count regardless of
    its filter (filters are dense), so units are perfectly balanced; the
    cost is multiplying non-zero inputs with zero filter weights.
    """
    spec = data.spec
    units = cfg.units_per_cluster
    weights = work.assignment.weight_of
    cluster_of = work.assignment.cluster_of
    n_filters = spec.n_filters
    n_groups = int(np.ceil(n_filters / units))

    red = reduce.one_sided(work.input_pop, n_filters, units)
    per_pos_barrier = red.barrier
    per_pos_pop = red.busy

    cluster_cycles = np.bincount(
        cluster_of, weights=per_pos_barrier * weights, minlength=cfg.n_clusters
    )
    # Ops: each of the n_filters filters processes every input non-zero.
    total_ops = float(np.sum(per_pos_pop * weights)) * n_filters
    nonzero = float(np.sum(work.match_sums * weights))
    zero = total_ops - nonzero
    # Intra loss: idle units in the last (partial) filter group, plus the
    # min-1-cycle broadcast slots.
    busy = total_ops
    total_slots = float(np.sum(per_pos_barrier * weights)) * units
    intra = total_slots - busy
    n_chunks = work.n_chunks
    return {
        "cluster_cycles": cluster_cycles,
        "nonzero": nonzero,
        "zero": zero,
        "intra": intra,
        "barriers": float(n_groups * n_chunks),
        "collocated": False,
        # Per-position views for the hardware counters: every filter
        # processes every input non-zero, so occupied slots are
        # pop x n_filters and the useful subset is the match count.
        "per_pos_barrier": per_pos_barrier,
        "per_pos_slots": per_pos_pop * n_filters,
        "per_pos_useful": work.match_sums.astype(np.float64),
        "per_pos_permute": np.zeros_like(per_pos_barrier),
    }
