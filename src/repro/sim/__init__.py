"""Cycle-level simulators and energy/area models (paper Sections 4-5).

- :mod:`repro.sim.config`  -- the Table 2 hardware configurations.
- :mod:`repro.sim.results` -- result records with the four-way execution
  time breakdown of Figures 10-12.
- :mod:`repro.sim.kernels` -- vectorised per-chunk match-count kernels
  shared by the simulators (numerically identical to the functional
  models in :mod:`repro.arch`, asserted in tests).
- :mod:`repro.sim.dense`   -- the TPU-like dense accelerator.
- :mod:`repro.sim.sparten` -- SparTen (no-GB / GB-S / GB-H) and the
  one-sided configuration that proxies Cnvlutin/Cambricon-X/EIE idling.
- :mod:`repro.sim.scnn`    -- SCNN and its dense/one-sided sanity variants.
- :mod:`repro.sim.fpga`    -- the memory-bandwidth-bounded FPGA model.
- :mod:`repro.sim.energy`  -- compute/memory energy with zero/non-zero
  splits (Figure 13).
- :mod:`repro.sim.area`    -- the ASIC area/power model (Table 4).
"""

from repro.sim.config import FPGA_CONFIG, HardwareConfig, LARGE_CONFIG, SMALL_CONFIG, config_for
from repro.sim.results import Breakdown, LayerResult
from repro.sim.dense import simulate_dense
from repro.sim.sparten import simulate_sparten
from repro.sim.scnn import simulate_scnn
from repro.sim.dynamic import simulate_dynamic_dispatch
from repro.sim.fpga import simulate_fpga
from repro.sim.validate import validate_layer
from repro.sim.sweeps import machine_scaling_sweep

__all__ = [
    "HardwareConfig",
    "LARGE_CONFIG",
    "SMALL_CONFIG",
    "FPGA_CONFIG",
    "config_for",
    "Breakdown",
    "LayerResult",
    "simulate_dense",
    "simulate_sparten",
    "simulate_scnn",
    "simulate_dynamic_dispatch",
    "simulate_fpga",
    "validate_layer",
    "machine_scaling_sweep",
]
