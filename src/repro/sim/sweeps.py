"""Design-space sweeps: machine scaling and analytical pre-screening.

The paper fixes two machine sizes (Table 2); these sweeps explore the
geometry space and show the scaling cliffs the breakdowns of Figures
10-12 hint at:

- more clusters than output positions leave whole clusters idle
  (inter-cluster loss; the GoogLeNet Inception 5a effect),
- more units per cluster than filters leave units idle within the
  groups (intra-cluster loss; the 5x5-reduce effect),
- and barrier granularity means the speedup of adding units saturates
  before the MAC count does.

Every sweep point routes through the content-hash result memo
(:func:`repro.core.compare.run_scheme_cached` via the fidelity ladder),
so repeated or overlapping sweeps -- and sweeps whose points differ only
in knobs outside the workload key -- hit the PR 1 cache instead of
re-simulating. :func:`prescreened_sweep` is the two-phase mode: the
analytical tier scores the *full* grid in closed form, then only the
top-k survivors pay for cycle-level simulation.
"""

from __future__ import annotations

from repro import telemetry
from repro.nets.layers import ConvLayerSpec
from repro.sim.config import HardwareConfig
from repro.telemetry import events
from repro.telemetry.progress import ProgressRenderer

__all__ = [
    "machine_scaling_sweep",
    "prescreened_sweep",
    "render_scaling",
    "render_prescreened",
]

#: Greedy-balancing variant -> result-memo scheme name.
_SCHEME_OF = {"no_gb": "sparten_no_gb", "gb_s": "sparten_gb_s", "gb_h": "sparten"}


def _sweep_config(
    n_clusters: int, units: int, position_sample: int | None
) -> HardwareConfig:
    return HardwareConfig(
        name=f"sweep_{n_clusters}x{units}",
        n_clusters=n_clusters,
        units_per_cluster=units,
        position_sample=position_sample,
    )


def _sweep_point(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    variant: str,
    seed: int,
    fidelity: str | None,
) -> dict[str, float]:
    """One geometry's speedup/utilisation row at the chosen fidelity."""
    from repro.analytical.fidelity import simulate_at_fidelity

    dense = simulate_at_fidelity("dense", spec, cfg, seed, fidelity=fidelity)
    sparse = simulate_at_fidelity(
        _SCHEME_OF[variant], spec, cfg, seed, fidelity=fidelity
    )
    total = sparse.breakdown.total
    return {
        "total_macs": float(cfg.total_macs),
        "speedup_vs_dense": dense.cycles / sparse.cycles,
        "cycles": sparse.cycles,
        "utilization": sparse.breakdown.nonzero_macs / total if total else 0.0,
        "intra_fraction": sparse.breakdown.intra_loss / total if total else 0.0,
        "inter_fraction": sparse.breakdown.inter_loss / total if total else 0.0,
    }


def machine_scaling_sweep(
    spec: ConvLayerSpec,
    geometries: tuple[tuple[int, int], ...] = (
        (4, 8),
        (8, 16),
        (16, 32),
        (32, 32),
        (64, 32),
    ),
    variant: str = "gb_h",
    position_sample: int | None = 200,
    seed: int = 0,
    fidelity: str | None = None,
    shard: tuple[int, int] | str | None = None,
) -> dict:
    """Sweep (clusters, units) geometries over one layer.

    Returns, per geometry: total MACs, SparTen speedup over the same-size
    dense machine, machine utilisation (useful MACs / MAC-cycles), and
    the loss fractions. Scaling efficiency = utilisation relative to the
    smallest machine's. *fidelity* picks the ladder rung (default: the
    ``REPRO_FIDELITY`` environment setting); ``"analytical"`` scores the
    whole sweep without running the cycle-level machine.

    *shard* (``(index, count)`` or ``"I/N"``) restricts the sweep to
    this process's deterministic content-hash slice of the geometry
    grid -- the same partition every other shard of the sweep computes
    (:func:`repro.dist.shard.shard_of`), so N shards cover the grid
    exactly once with no coordination. Points route through the result
    memo/disk store, so co-operating shards sharing ``REPRO_CACHE_DIR``
    also share work.
    """
    if variant not in _SCHEME_OF:
        raise ValueError(f"variant must be one of {sorted(_SCHEME_OF)}, got {variant!r}")
    label = "sweep"
    if shard is not None:
        from repro.dist.shard import parse_shard, shard_of

        index, count = parse_shard(shard) if isinstance(shard, str) else shard
        geometries = tuple(
            (c, u)
            for c, u in geometries
            if shard_of(f"{spec.name}:{c}x{u}:{variant}:{seed}", count) == index
        )
        label = f"sweep {index}/{count}"
    out: dict[tuple[int, int], dict[str, float]] = {}
    with telemetry.span("scaling_sweep", layer=spec.name):
        with ProgressRenderer(total=len(geometries), label=label) as progress:
            for n_clusters, units in geometries:
                cfg = _sweep_config(n_clusters, units, position_sample)
                row = _sweep_point(spec, cfg, variant, seed, fidelity)
                out[(n_clusters, units)] = row
                events.emit(
                    "sweep.point",
                    name=f"{n_clusters}x{units}",
                    clusters=n_clusters,
                    units=units,
                    variant=variant,
                    speedup=row["speedup_vs_dense"],
                    cycles=row["cycles"],
                )
                progress.update(done=len(out))
    return out


def _row_from_results(dense, sparse, cfg: HardwareConfig) -> dict[str, float]:
    total = sparse.breakdown.total
    return {
        "total_macs": float(cfg.total_macs),
        "speedup_vs_dense": dense.cycles / sparse.cycles,
        "cycles": sparse.cycles,
        "utilization": sparse.breakdown.nonzero_macs / total if total else 0.0,
        "intra_fraction": sparse.breakdown.intra_loss / total if total else 0.0,
        "inter_fraction": sparse.breakdown.inter_loss / total if total else 0.0,
    }


def prescreened_sweep(
    spec: ConvLayerSpec,
    geometries: tuple[tuple[int, int], ...],
    variants: tuple[str, ...] | str = "gb_h",
    position_sample: int | None = 200,
    seed: int = 0,
    top_k: int = 3,
    final_fidelity: str = "counters",
    stats_sample: int | None = 512,
) -> dict:
    """Two-phase design-space sweep: analytical pre-screen, then simulate.

    Phase 1 scores *every* (clusters, units, variant) point with the
    analytical tier from **one** density-statistics extraction:
    statistics are extracted once at a canonical single-cluster geometry
    (``stats_sample`` positions, evenly spaced over the output map) and
    re-sliced onto each cluster count with
    :func:`repro.analytical.density.regroup_stats` -- the group-level
    barrier terms are memoised per (units, variant), so the cluster axis
    of the grid costs only a weighted regrouping. Phase 2 re-runs only
    the *top_k* survivors, ranked by predicted speedup over dense, at
    *final_fidelity* on the cycle-level machine (matched
    ``position_sample``). Returns::

        {
            "analytical": {(clusters, units, variant): row, ...},  # full grid
            "survivors": [(clusters, units, variant), ...],        # top-k
            "simulated": {(clusters, units, variant): row, ...},   # survivors
        }

    The validation gate (:mod:`repro.analytical.validate`) is what makes
    the pre-screen trustworthy: ranking correlation >= 0.95 means the
    simulated optimum is in the analytical top-k for any reasonable k.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if isinstance(variants, str):
        variants = (variants,)
    for variant in variants:
        if variant not in _SCHEME_OF:
            raise ValueError(
                f"variants must be among {sorted(_SCHEME_OF)}, got {variant!r}"
            )
    from repro.analytical.density import extract_density_stats, regroup_stats
    from repro.analytical.model import predict_layer

    with telemetry.span("prescreened_sweep", layer=spec.name):
        with telemetry.span("prescreen_analytical", layer=spec.name):
            canonical = HardwareConfig(
                name="prescreen_canonical",
                n_clusters=1,
                units_per_cluster=1,
                position_sample=stats_sample,
            )
            stats = extract_density_stats(spec, canonical, seed)
            analytical: dict[tuple[int, int, str], dict[str, float]] = {}
            for n_clusters, units in geometries:
                cfg = _sweep_config(n_clusters, units, position_sample)
                regrouped = regroup_stats(stats, cfg)
                dense = predict_layer(spec, cfg, scheme="dense", stats=regrouped)
                for variant in variants:
                    sparse = predict_layer(
                        spec, cfg, scheme=_SCHEME_OF[variant], stats=regrouped
                    )
                    analytical[(n_clusters, units, variant)] = _row_from_results(
                        dense, sparse, cfg
                    )
        survivors = sorted(
            analytical, key=lambda g: -analytical[g]["speedup_vs_dense"]
        )[:top_k]
        telemetry.count("sweep.prescreen.points", len(analytical))
        telemetry.count("sweep.prescreen.survivors", len(survivors))
        simulated: dict[tuple[int, int, str], dict[str, float]] = {}
        with telemetry.span("prescreen_survivors", layer=spec.name):
            with ProgressRenderer(total=len(survivors), label="sweep") as progress:
                for n_clusters, units, variant in survivors:
                    cfg = _sweep_config(n_clusters, units, position_sample)
                    row = _sweep_point(spec, cfg, variant, seed, final_fidelity)
                    simulated[(n_clusters, units, variant)] = row
                    events.emit(
                        "sweep.point",
                        name=f"{n_clusters}x{units}:{variant}",
                        clusters=n_clusters,
                        units=units,
                        variant=variant,
                        speedup=row["speedup_vs_dense"],
                        cycles=row["cycles"],
                        phase="survivor",
                    )
                    progress.update(done=len(simulated))
    return {
        "analytical": analytical,
        "survivors": survivors,
        "simulated": simulated,
    }


def render_prescreened(result: dict, layer_name: str) -> str:
    """Table view of a two-phase sweep: full analytical grid + survivors."""
    lines = [
        f"Pre-screened sweep on {layer_name}: "
        f"{len(result['analytical'])} points scored analytically, "
        f"{len(result['survivors'])} simulated",
        f"{'clusters':>9s} {'units':>6s} {'variant':>8s} {'pred speedup':>13s} "
        f"{'sim speedup':>12s} {'survivor':>9s}",
    ]
    ranked = sorted(
        result["analytical"],
        key=lambda g: -result["analytical"][g]["speedup_vs_dense"],
    )
    for geom in ranked:
        clusters, units, variant = geom
        pred = result["analytical"][geom]["speedup_vs_dense"]
        sim = result["simulated"].get(geom)
        sim_text = f"{sim['speedup_vs_dense']:.2f}x" if sim else "-"
        lines.append(
            f"{clusters:9d} {units:6d} {variant:>8s} {pred:12.2f}x "
            f"{sim_text:>12s} {'yes' if geom in result['survivors'] else '':>9s}"
        )
    return "\n".join(lines)


def render_scaling(sweep: dict, layer_name: str) -> str:
    """Table view of a machine-scaling sweep."""
    lines = [
        f"Machine scaling on {layer_name} (SparTen GB-H vs equal-MAC dense)",
        f"{'clusters':>9s} {'units':>6s} {'MACs':>6s} {'speedup':>8s} "
        f"{'util':>6s} {'intra':>6s} {'inter':>6s}",
    ]
    for (clusters, units), row in sweep.items():
        lines.append(
            f"{clusters:9d} {units:6d} {row['total_macs']:6.0f} "
            f"{row['speedup_vs_dense']:7.2f}x {row['utilization']:6.1%} "
            f"{row['intra_fraction']:6.1%} {row['inter_fraction']:6.1%}"
        )
    return "\n".join(lines)
