"""Machine-scaling study: where SparTen's parallelism stops paying.

The paper fixes two machine sizes (Table 2); this study sweeps the
machine and shows the scaling cliffs the breakdowns of Figures 10-12
hint at:

- more clusters than output positions leave whole clusters idle
  (inter-cluster loss; the GoogLeNet Inception 5a effect),
- more units per cluster than filters leave units idle within the
  groups (intra-cluster loss; the 5x5-reduce effect),
- and barrier granularity means the speedup of adding units saturates
  before the MAC count does.

Each sweep point reports speedup over an equal-MAC dense machine and the
loss split, so the scaling efficiency is attributable.
"""

from __future__ import annotations

from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import synthesize_layer
from repro.sim.config import HardwareConfig
from repro.sim.dense import simulate_dense
from repro.sim.kernels import compute_chunk_work
from repro.sim.sparten import simulate_sparten

__all__ = ["machine_scaling_sweep"]


def machine_scaling_sweep(
    spec: ConvLayerSpec,
    geometries: tuple[tuple[int, int], ...] = (
        (4, 8),
        (8, 16),
        (16, 32),
        (32, 32),
        (64, 32),
    ),
    variant: str = "gb_h",
    position_sample: int | None = 200,
    seed: int = 0,
) -> dict:
    """Sweep (clusters, units) geometries over one layer.

    Returns, per geometry: total MACs, SparTen speedup over the same-size
    dense machine, machine utilisation (useful MACs / MAC-cycles), and
    the loss fractions. Scaling efficiency = utilisation relative to the
    smallest machine's.
    """
    out: dict[tuple[int, int], dict[str, float]] = {}
    data = synthesize_layer(spec, seed=seed)
    for n_clusters, units in geometries:
        cfg = HardwareConfig(
            name=f"sweep_{n_clusters}x{units}",
            n_clusters=n_clusters,
            units_per_cluster=units,
            position_sample=position_sample,
        )
        work = compute_chunk_work(data, cfg, need_counts=True)
        dense = simulate_dense(spec, cfg, data=data, work=work)
        sparse = simulate_sparten(spec, cfg, variant=variant, data=data, work=work)
        total = sparse.breakdown.total
        out[(n_clusters, units)] = {
            "total_macs": float(cfg.total_macs),
            "speedup_vs_dense": dense.cycles / sparse.cycles,
            "cycles": sparse.cycles,
            "utilization": sparse.breakdown.nonzero_macs / total if total else 0.0,
            "intra_fraction": sparse.breakdown.intra_loss / total if total else 0.0,
            "inter_fraction": sparse.breakdown.inter_loss / total if total else 0.0,
        }
    return out


def render_scaling(sweep: dict, layer_name: str) -> str:
    """Table view of a machine-scaling sweep."""
    lines = [
        f"Machine scaling on {layer_name} (SparTen GB-H vs equal-MAC dense)",
        f"{'clusters':>9s} {'units':>6s} {'MACs':>6s} {'speedup':>8s} "
        f"{'util':>6s} {'intra':>6s} {'inter':>6s}",
    ]
    for (clusters, units), row in sweep.items():
        lines.append(
            f"{clusters:9d} {units:6d} {row['total_macs']:6.0f} "
            f"{row['speedup_vs_dense']:7.2f}x {row['utilization']:6.1%} "
            f"{row['intra_fraction']:6.1%} {row['inter_fraction']:6.1%}"
        )
    return "\n".join(lines)
