"""Cross-simulator invariants: one workload, many machines, one truth.

The architectures differ in *when* and *where* they multiply, never in
*what*: for a given workload the useful multiply-accumulates are fixed by
the data. This module checks those conservation laws across the
simulators — the deepest consistency check the reproduction has, used by
the test suite and available to users who modify a model:

1. useful MACs agree between Dense, One-sided, and every SparTen variant
   (identical by construction: all derive from the same match counts);
2. SCNN's useful MACs bound them from above at unit stride (its
   Cartesian product adds tile-halo products but misses nothing);
3. each result's breakdown components sum to ``cycles x total MACs``;
4. no scheme beats the workload's two-sided density bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import LayerData, synthesize_layer
from repro.sim.config import HardwareConfig
from repro.sim.dense import simulate_dense
from repro.sim.kernels import ChunkWork, compute_chunk_work
from repro.sim.results import LayerResult
from repro.sim.scnn import simulate_scnn
from repro.sim.sparten import simulate_sparten

__all__ = ["ValidationReport", "validate_layer"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of the cross-simulator invariant checks on one workload."""

    layer_name: str
    checks: dict[str, bool]
    details: dict[str, str]

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failures(self) -> list[str]:
        return [name for name, passed in self.checks.items() if not passed]


def validate_layer(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    data: LayerData | None = None,
    work: ChunkWork | None = None,
    seed: int = 0,
    rel_tol: float = 1e-6,
) -> ValidationReport:
    """Run every simulator on one workload and check the invariants."""
    if data is None:
        data = synthesize_layer(spec, seed=seed)
    if work is None:
        work = compute_chunk_work(data, cfg, need_counts=True)

    results: dict[str, LayerResult] = {
        "dense": simulate_dense(spec, cfg, data=data, work=work),
        "one_sided": simulate_sparten(spec, cfg, sided="one", data=data, work=work),
        "sparten_no_gb": simulate_sparten(
            spec, cfg, variant="no_gb", data=data, work=work
        ),
        "sparten_gb_s": simulate_sparten(
            spec, cfg, variant="gb_s", data=data, work=work
        ),
        "sparten": simulate_sparten(spec, cfg, variant="gb_h", data=data, work=work),
        "scnn": simulate_scnn(spec, cfg, variant="two", data=data),
    }

    checks: dict[str, bool] = {}
    details: dict[str, str] = {}

    # 1. Useful-MAC conservation across the match-count-based schemes.
    reference = results["dense"].breakdown.nonzero_macs
    for name in ("one_sided", "sparten_no_gb", "sparten_gb_s", "sparten"):
        value = results[name].breakdown.nonzero_macs
        ok = np.isclose(value, reference, rtol=rel_tol)
        checks[f"macs_conserved[{name}]"] = bool(ok)
        details[f"macs_conserved[{name}]"] = f"{value:.0f} vs {reference:.0f}"

    # 2. SCNN covers at least the true matches at unit stride.
    if spec.stride == 1:
        scnn_macs = results["scnn"].breakdown.nonzero_macs
        checks["scnn_covers_matches"] = bool(scnn_macs >= reference * (1 - rel_tol))
        details["scnn_covers_matches"] = f"{scnn_macs:.0f} >= {reference:.0f}"

    # 3. Breakdown identity per scheme.
    for name, result in results.items():
        lhs = result.breakdown.total
        rhs = result.cycles * result.total_macs
        ok = np.isclose(lhs, rhs, rtol=1e-9)
        checks[f"breakdown_identity[{name}]"] = bool(ok)
        details[f"breakdown_identity[{name}]"] = f"{lhs:.0f} vs {rhs:.0f}"

    # 4. No scheme beats the two-sided density bound (+ one barrier slack
    #    cycle per chunk for the min-1-cycle broadcast floor).
    dense_cycles = results["dense"].cycles
    weights = work.assignment.weight_of
    useful = float(np.sum(work.match_sums * weights))
    if useful > 0:
        bound = dense_cycles * useful / results["dense"].breakdown.total
        for name in ("sparten_no_gb", "sparten_gb_s", "sparten"):
            cycles = results[name].cycles
            ok = cycles >= bound * (1 - rel_tol)
            checks[f"density_bound[{name}]"] = bool(ok)
            details[f"density_bound[{name}]"] = f"{cycles:.0f} >= {bound:.0f}"

    return ValidationReport(layer_name=spec.name, checks=checks, details=details)
