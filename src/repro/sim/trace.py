"""Event-driven trace simulation of one cluster with double buffering.

Section 3.2: "To hide memory latency, the input map, filter and output
map are double-buffered so that later input map chunks are fetched and
broadcast, and the previous output map data is written while processing
the current input chunks."

The chunk-level simulators assume that hiding is perfect; this module
*checks* it. It walks one cluster cycle by cycle through a sequence of
chunk jobs with an explicit memory port: each chunk's payload must be
fetched into the shadow buffer while the current chunk computes; when a
fetch outlasts the compute, the cluster stalls -- and the trace records
exactly where. The result quantifies, per layer, how much latency the
double buffer actually hides, and at what memory latency/bandwidth the
compute-bound assumption breaks (complementing the FPGA roofline, which
models bandwidth but not per-chunk latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nets.synthesis import LayerData
from repro.sim.config import HardwareConfig
from repro.sim.kernels import ChunkWork, compute_chunk_work

__all__ = ["ChunkJob", "TraceEvent", "TraceResult", "DoubleBufferedCluster"]


@dataclass(frozen=True)
class ChunkJob:
    """One broadcast interval: its compute time and its fetch payload."""

    compute_cycles: int
    fetch_bytes: float


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling event in the trace (for debugging/inspection)."""

    cycle: int
    kind: str  # "compute", "stall", "fetch_done"
    chunk: int
    detail: float = 0.0


@dataclass
class TraceResult:
    """Outcome of one traced execution."""

    total_cycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def hiding_efficiency(self) -> float:
        """Fraction of memory time hidden under compute (1.0 = perfect)."""
        if self.total_cycles == 0:
            return 1.0
        return self.compute_cycles / self.total_cycles


class DoubleBufferedCluster:
    """A cluster front-end with a two-deep input buffer and a memory port.

    Args:
        bytes_per_cycle: memory-port bandwidth.
        fetch_latency: fixed cycles before a fetch's first byte arrives
            (overlapped across outstanding requests, as DRAM pipelines).
        prefetch_depth: input buffers available. 2 is the paper's double
            buffering; deeper models the CPU's request buffering
            ("the CPU places many requests to keep the compute units
            busy") with more chunk buffers.
        keep_events: record the full event list (memory-heavy for long
            traces; cycle totals are always kept).
    """

    def __init__(
        self,
        bytes_per_cycle: float = 8.0,
        fetch_latency: int = 20,
        prefetch_depth: int = 2,
        keep_events: bool = False,
    ):
        if bytes_per_cycle <= 0:
            raise ValueError(f"bandwidth must be positive, got {bytes_per_cycle}")
        if fetch_latency < 0:
            raise ValueError(f"latency must be non-negative, got {fetch_latency}")
        if prefetch_depth < 2:
            raise ValueError(
                f"need at least double buffering (depth 2), got {prefetch_depth}"
            )
        self.bytes_per_cycle = bytes_per_cycle
        self.fetch_latency = fetch_latency
        self.prefetch_depth = prefetch_depth
        self.keep_events = keep_events

    def transfer_cycles(self, nbytes: float) -> int:
        """Port-occupancy cycles for one chunk's payload."""
        return int(np.ceil(nbytes / self.bytes_per_cycle))

    def run(self, jobs: list[ChunkJob]) -> TraceResult:
        """Trace a job sequence through the buffered front end.

        Chunk ``i``'s fetch may issue once a buffer frees (when chunk
        ``i - depth``'s compute completes); the memory port serialises
        transfers and each arrival trails its transfer by the (pipelined)
        fetch latency. Compute ``i`` starts at
        ``max(compute_{i-1} done, arrival_i)`` -- the gap is a stall.
        """
        result = TraceResult()
        if not jobs:
            return result
        n = len(jobs)
        compute_done = np.zeros(n, dtype=np.int64)
        port_free = 0
        clock = 0
        for i, job in enumerate(jobs):
            # Buffer availability gates the fetch issue.
            issue = 0 if i < self.prefetch_depth else int(
                compute_done[i - self.prefetch_depth]
            )
            begin = max(issue, port_free)
            transfer = self.transfer_cycles(job.fetch_bytes)
            port_free = begin + transfer
            arrival = begin + transfer + self.fetch_latency
            self._emit(result, arrival, "fetch_done", i)

            start = max(clock, arrival)
            if start > clock:
                result.stall_cycles += start - clock
                self._emit(result, start, "stall", i, start - clock)
            clock = start + job.compute_cycles
            compute_done[i] = clock
            result.compute_cycles += job.compute_cycles
            self._emit(result, clock, "compute", i, job.compute_cycles)
        result.total_cycles = int(clock)
        return result

    def run_layer(
        self,
        data: LayerData,
        cfg: HardwareConfig,
        work: ChunkWork | None = None,
        value_bytes: int = 1,
    ) -> TraceResult:
        """Trace a whole layer's chunk stream for the busiest cluster.

        Builds one :class:`ChunkJob` per (position, chunk) broadcast from
        the vectorised work counts: compute = the barrier (max unit
        matches, min 1), fetch = the input chunk's mask + non-zero
        payload.
        """
        if work is None:
            work = compute_chunk_work(data, cfg, need_counts=True)
        counts = work.materialized_counts()
        busiest = int(np.argmax(work.assignment.cluster_positions))
        sel = work.assignment.cluster_of == busiest
        barrier = np.maximum(counts[:, sel, :].max(axis=2), 1)  # (chunks, pos)
        pops = work.input_pop[:, sel]
        mask_bytes = cfg.chunk_size / 8.0
        jobs = [
            ChunkJob(
                compute_cycles=int(barrier[c, p]),
                fetch_bytes=mask_bytes + float(pops[c, p]) * value_bytes,
            )
            for p in range(barrier.shape[1])
            for c in range(barrier.shape[0])
        ]
        return self.run(jobs)

    def _emit(
        self, result: TraceResult, cycle: int, kind: str, chunk: int, detail: float = 0.0
    ) -> None:
        if self.keep_events:
            result.events.append(
                TraceEvent(cycle=int(cycle), kind=kind, chunk=chunk, detail=detail)
            )
