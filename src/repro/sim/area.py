"""ASIC area/power model (paper Section 5.6, Table 4).

The paper synthesised one 32-compute-unit SparTen cluster at 45 nm
(FreePDK45 + Design Compiler, Cacti 6.5 for the buffers) and reports:

    Component          Area (mm^2)   Power (mW)
    Buffers            0.1           19.2
    Prefix-sum         0.418         48
    Priority Encoder   0.0626        6.4
    MACs               0.0432        13.82
    Permute Network    0.0344        10.6
    Other              0.1           20.28
    Total              0.766         118.30

This module reproduces that table at the reference configuration and
scales each component with the configuration parameters that physically
drive it: prefix-sum and priority-encoder with unit count and mask width
(x log-width for the prefix tree), MACs with unit count, buffers with
capacity, the permute network with port count x stages x bisection width.
The 800 MHz synthesis clock is recorded for the performance-per-area
conversions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from repro.arch.buffers import sparten_buffers
from repro.sim.config import HardwareConfig, LARGE_CONFIG

__all__ = ["ComponentEstimate", "ClusterAreaPower", "cluster_area_power", "CLOCK_MHZ"]

#: Synthesis clock of the paper's 45 nm implementation.
CLOCK_MHZ = 800

#: Reference design point of Table 4.
_REF_UNITS = 32
_REF_CHUNK = 128
_REF_BISECTION = 4
_REF_BUFFER_BYTES = sparten_buffers(
    n_units=_REF_UNITS, chunk_size=_REF_CHUNK, collocated=True
).cluster_bytes

#: Table 4 values: component -> (area mm^2, power mW).
_TABLE4 = {
    "Buffers": (0.1, 19.2),
    "Prefix-sum": (0.418, 48.0),
    "Priority Encoder": (0.0626, 6.4),
    "MACs": (0.0432, 13.82),
    "Permute Network": (0.0344, 10.6),
    "Other": (0.1, 20.28),
}


@dataclass(frozen=True)
class ComponentEstimate:
    """Area/power of one cluster component."""

    name: str
    area_mm2: float
    power_mw: float


@dataclass(frozen=True)
class ClusterAreaPower:
    """The full per-cluster estimate (Table 4 shape)."""

    components: tuple[ComponentEstimate, ...]

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    def component(self, name: str) -> ComponentEstimate:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"no component named {name!r}")

    def rows(self) -> list[tuple[str, float, float]]:
        """(name, area, power) rows plus the total, for table rendering."""
        rows = [(c.name, c.area_mm2, c.power_mw) for c in self.components]
        rows.append(("Total", self.total_area_mm2, self.total_power_mw))
        return rows


def _scale_factors(cfg: HardwareConfig) -> dict[str, float]:
    """Per-component scale relative to the Table 4 reference point."""
    units = cfg.units_per_cluster / _REF_UNITS
    width = cfg.chunk_size / _REF_CHUNK
    # Parallel-prefix trees grow ~n log n in the mask width.
    log_ref = log2(_REF_CHUNK)
    log_now = log2(max(2, cfg.chunk_size))
    prefix = units * width * (log_now / log_ref)
    priority = units * width
    buffers = (
        sparten_buffers(
            n_units=cfg.units_per_cluster, chunk_size=cfg.chunk_size, collocated=True
        ).cluster_bytes
        / _REF_BUFFER_BYTES
    )
    if cfg.units_per_cluster >= 2:
        stages = log2(cfg.units_per_cluster) / log2(_REF_UNITS)
        permute = units * stages * (cfg.bisection_width / _REF_BISECTION)
    else:
        permute = 0.0
    return {
        "Buffers": buffers,
        "Prefix-sum": prefix,
        "Priority Encoder": priority,
        "MACs": units,
        "Permute Network": permute,
        "Other": units,
    }


def cluster_area_power(cfg: HardwareConfig = LARGE_CONFIG) -> ClusterAreaPower:
    """Estimate one cluster's area/power; exact Table 4 at the reference.

    The reference point is 32 units, 128-bit chunks, bisection width 4
    (the large configuration's cluster).
    """
    scales = _scale_factors(cfg)
    components = tuple(
        ComponentEstimate(
            name=name,
            area_mm2=area * scales[name],
            power_mw=power * scales[name],
        )
        for name, (area, power) in _TABLE4.items()
    )
    return ClusterAreaPower(components=components)
