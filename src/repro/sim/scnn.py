"""The SCNN simulator (paper Sections 2.1, 2.1.1 and 4).

SCNN is *input stationary*: the input map is tiled in X-Y across a grid
of PEs (8x8 large, 4x4 small); each PE holds its tile for all channels.
Filters are broadcast in output groups (8 filters), channel by channel;
per channel, a PE's 4x4 multiplier array computes the Cartesian product
of the tile-channel's non-zero inputs with the group-channel's non-zero
weights -- 4 inputs x 4 weights per cycle, so a channel costs
``ceil(I/4) * ceil(W/4)`` cycles and wastes the fractional remainder
(intra-PE loss). Each broadcast imposes an inter-PE barrier, exposing
load imbalance from (1) varying tile sparsity, (2) truncated edge tiles,
and (3) the leftover tile remainder -- all reproduced here because tiles
are cut with the methodology's 6x6 cap and assigned round-robin.

Non-unit stride: the Cartesian product assumes every input meets every
weight, true only for stride 1. For stride s only ~1/s^2 of products land
on valid outputs; the rest are computed and discarded (counted as zero /
ineffectual computation), which is why SCNN collapses on AlexNet Layer 0.

Variants: ``two`` (SCNN proper), ``one`` (SCNN-one-sided: dense weights),
``dense`` (SCNN-dense: dense inputs and weights) -- the paper's sanity
checks that inherit SCNN's overheads.
"""

from __future__ import annotations

import numpy as np

from repro import profiling, telemetry
from repro.arch.memory import layer_traffic
from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import LayerData
from repro.sim.config import HardwareConfig
from repro.sim.results import Breakdown, LayerResult, observability_extras

__all__ = ["simulate_scnn", "scnn_tile_plan"]


def scnn_tile_plan(
    spec: ConvLayerSpec, cfg: HardwareConfig
) -> tuple[int, int, int, int]:
    """SCNN's input tiling: (tile_h, tile_w, n_tiles_y, n_tiles_x).

    Tile side is the methodology's 6 (the best point of the paper's tile
    search under 1K accumulators and output-group 8), shrunk to
    ``ceil(extent / grid)`` on small maps so the PE grid stays coverable.
    """
    gh, gw = cfg.scnn_pe_grid
    tile_h = max(1, min(cfg.scnn_max_tile, int(np.ceil(spec.in_height / gh))))
    tile_w = max(1, min(cfg.scnn_max_tile, int(np.ceil(spec.in_width / gw))))
    n_ty = int(np.ceil(spec.in_height / tile_h))
    n_tx = int(np.ceil(spec.in_width / tile_w))
    return tile_h, tile_w, n_ty, n_tx


def simulate_scnn(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    variant: str = "two",
    data: LayerData | None = None,
    seed: int = 0,
) -> LayerResult:
    """Simulate one layer on SCNN (or its dense/one-sided variants)."""
    if variant not in ("two", "one", "dense"):
        raise ValueError(f"variant must be 'two', 'one' or 'dense', got {variant!r}")
    scheme = {"two": "scnn", "one": "scnn_one_sided", "dense": "scnn_dense"}[variant]
    n_pes = cfg.scnn_n_pes
    mult_in = cfg.scnn_mult_rows
    mult_w = cfg.scnn_mult_cols
    macs_per_pe = cfg.scnn_macs_per_pe

    mode = profiling.profile_mode()
    profile = mode != profiling.MODE_OFF
    bins = profiling.timeline_bins() if mode == profiling.MODE_TIMELINE else 0

    cycles_total = 0.0
    useful = 0.0
    issued = 0.0
    inter = 0.0
    stride_waste = 0.0
    operand_zero = 0.0
    counters = None

    if data is not None:
        batch_items = [data]
    else:
        # Route per-image synthesis through the layer-data memo so batched
        # runs share workloads with the other simulators.
        from repro.core import workload

        batch_items = [
            workload.get_layer_data(spec, seed=seed + image)
            for image in range(cfg.batch)
        ]
    for img_data in batch_items:
        s = _scnn_image_stats(
            img_data, cfg, variant, n_pes, mult_in, mult_w,
            profile=profile, bins=bins, scheme=scheme,
        )
        cycles_total += s["cycles"]
        useful += s["useful"]
        issued += s["issued"]
        inter += s["inter"]
        stride_waste += s["stride_waste"]
        operand_zero += s["operand_zero"]
        if profile:
            counters = (
                s["counters"] if counters is None else counters + s["counters"]
            )

    intra = issued - useful - stride_waste - operand_zero
    breakdown = Breakdown(
        nonzero_macs=useful,
        zero_macs=stride_waste + operand_zero,
        intra_loss=intra,
        inter_loss=inter,
    )
    traffic_scheme = {"two": "two_sided", "one": "one_sided", "dense": "dense"}[variant]
    extras = observability_extras(breakdown)
    telemetry.count(f"sim.{scheme}.layers")
    telemetry.count(f"sim.{scheme}.cycles", cycles_total)
    telemetry.gauge(f"sim.{scheme}.mac_utilization", extras["mac_utilization"])
    result = LayerResult(
        scheme=scheme,
        layer_name=spec.name,
        cycles=cycles_total,
        compute_cycles=cycles_total,
        total_macs=n_pes * macs_per_pe,
        breakdown=breakdown,
        traffic=layer_traffic(spec, scheme=traffic_scheme, chunk_size=cfg.chunk_size),
        extras={
            **extras,
            "variant": variant,
        },
        counters=counters,
    )
    profiling.record_layer(result)
    return result


def _scnn_image_stats(
    data: LayerData,
    cfg: HardwareConfig,
    variant: str,
    n_pes: int,
    mult_in: int,
    mult_w: int,
    profile: bool = False,
    bins: int = 0,
    scheme: str = "scnn",
) -> dict:
    """Cycle/work statistics for one image on SCNN."""
    spec = data.spec
    tile_h, tile_w, n_ty, n_tx = scnn_tile_plan(spec, cfg)
    c = spec.in_channels
    group = cfg.scnn_output_group
    n_groups = int(np.ceil(spec.n_filters / group))

    # Per-tile, per-channel non-zero input counts (dense variant: cells).
    in_mask = data.input_mask
    tile_nnz = np.zeros((n_ty * n_tx, c), dtype=np.int64)
    tile_cells = np.zeros(n_ty * n_tx, dtype=np.int64)
    for ty in range(n_ty):
        for tx in range(n_tx):
            block = in_mask[
                ty * tile_h : (ty + 1) * tile_h,
                tx * tile_w : (tx + 1) * tile_w,
                :,
            ]
            idx = ty * n_tx + tx
            tile_nnz[idx] = block.sum(axis=(0, 1))
            tile_cells[idx] = block.shape[0] * block.shape[1]
    if variant == "dense":
        tile_counts = np.broadcast_to(tile_cells[:, None], tile_nnz.shape)
    else:
        tile_counts = tile_nnz

    # Per-group, per-channel weight counts.
    filt_mask = data.filter_masks  # (F, k, k, C)
    w_nnz_per_filter = filt_mask.sum(axis=(1, 2))  # (F, C)
    w_dense_per_filter = spec.kernel * spec.kernel
    group_w_nnz = np.zeros((n_groups, c), dtype=np.int64)
    group_w_all = np.zeros((n_groups, c), dtype=np.int64)
    for g in range(n_groups):
        members = range(g * group, min((g + 1) * group, spec.n_filters))
        group_w_nnz[g] = w_nnz_per_filter[list(members)].sum(axis=0)
        group_w_all[g] = len(list(members)) * w_dense_per_filter
    group_weights = group_w_nnz if variant == "two" else group_w_all

    # Round-robin tile -> PE assignment; per-PE ceil'd input work.
    pe_of_tile = np.arange(n_ty * n_tx) % n_pes
    ceil_in = np.ceil(tile_counts / mult_in).astype(np.int64)  # (tiles, C)
    pe_ceil = np.zeros((n_pes, c), dtype=np.int64)
    np.add.at(pe_ceil, pe_of_tile, ceil_in)

    ceil_w = np.ceil(group_weights / mult_w).astype(np.int64)  # (G, C)
    sum_ceil_w = ceil_w.sum(axis=0)  # (C,)

    # Barrier per (group, channel): the weight factor is common to all
    # PEs, so the barrier maximum factorises.
    max_pe = pe_ceil.max(axis=0)  # (C,)
    cycles = float(np.dot(max_pe, sum_ceil_w))
    issued = float(np.dot(pe_ceil.sum(axis=0), sum_ceil_w)) * (mult_in * mult_w)
    inter = (
        float(np.dot(n_pes * max_pe - pe_ceil.sum(axis=0), sum_ceil_w))
        * mult_in
        * mult_w
    )

    # Product counts (exact, before the multiplier-array ceil).
    in_total = tile_counts.sum(axis=0).astype(np.float64)  # (C,)
    in_nz_total = tile_nnz.sum(axis=0).astype(np.float64)
    w_total = group_weights.sum(axis=0).astype(np.float64)
    w_nz_total = group_w_nnz.sum(axis=0).astype(np.float64)
    products = float(np.dot(in_total, w_total))
    both_nz = float(np.dot(in_nz_total, w_nz_total))
    operand_zero = products - both_nz
    stride_factor = 1.0 / (spec.stride * spec.stride)
    useful = both_nz * stride_factor
    stride_waste = both_nz - useful

    stats = {
        "cycles": cycles,
        "useful": useful,
        "issued": issued,
        "inter": inter,
        "stride_waste": stride_waste,
        "operand_zero": operand_zero,
    }
    if not profile:
        return stats

    # Per-PE hardware counters. A PE issues for ``pe_ceil * ceil_w``
    # cycles of each (group, channel) broadcast and then waits for the
    # slowest PE, so its occupied slots, exact products and barrier math
    # all factorise over channels exactly like the global statistics.
    macs_per_pe = mult_in * mult_w
    in_pe = np.zeros((n_pes, c), dtype=np.float64)
    np.add.at(in_pe, pe_of_tile, tile_counts.astype(np.float64))
    in_nz_pe = np.zeros((n_pes, c), dtype=np.float64)
    np.add.at(in_nz_pe, pe_of_tile, tile_nnz.astype(np.float64))
    issued_slots = (pe_ceil * sum_ceil_w[None, :]).astype(np.float64)  # (PEs, C)
    issued_pe = issued_slots.sum(axis=1) * macs_per_pe
    products_pe = in_pe @ w_total
    both_nz_pe = in_nz_pe @ w_nz_total
    useful_pe = both_nz_pe * stride_factor
    timeline_cycles = timeline_busy = None
    if bins:
        # Channel-axis progress bins: every PE advances through the
        # channels in lockstep (the broadcast barrier), so the wall row
        # is shared and only the occupied slots differ per PE.
        bin_of = (np.arange(c) * bins) // max(c, 1)
        onehot = (bin_of[:, None] == np.arange(bins)[None, :]).astype(np.float64)
        wall_ch = (max_pe * sum_ceil_w).astype(np.float64)
        timeline_cycles = np.tile(wall_ch @ onehot, (n_pes, 1))
        timeline_busy = (issued_slots * macs_per_pe) @ onehot
    stats["counters"] = profiling.CounterSet(
        scheme=scheme,
        n_clusters=n_pes,
        units_per_cluster=macs_per_pe,
        total_cycles=cycles,
        busy=useful_pe,
        filter_zero=products_pe - useful_pe,
        barrier_wait=issued_pe - products_pe,
        permute_stall=np.zeros(n_pes, dtype=np.float64),
        imbalance_idle=cycles * macs_per_pe - issued_pe,
        memory_stall=np.zeros(n_pes, dtype=np.float64),
        barriers=float(n_groups * c),
        buffer_hwm={
            "input_tile_values": float(tile_nnz.max(initial=0)),
            "weight_group_values": float(group_weights.max(initial=0)),
        },
        timeline_cycles=timeline_cycles,
        timeline_busy=timeline_busy,
    )
    return stats
