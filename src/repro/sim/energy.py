"""Energy accounting with zero/non-zero splits (paper Section 5.3, Fig 13).

Compute and memory energy are reported separately (the paper's Verilog
toolchain could not normalise DRAM energy against accelerator energy) and
each splits into zero and non-zero components:

- Compute: every issued multiply costs the scheme's per-op energy;
  multiplies on zero operands are the *zero* component, which One-sided
  shrinks and SparTen eliminates. Sparse schemes pay more per op (bigger
  buffers, inner-join circuitry, output compaction), dense pays the least
  (8 B/MAC systolic streaming); Dense-naive is dense op counts charged at
  SparTen-like buffering.
- Memory: DRAM traffic at a per-byte energy; zero-value bytes are the
  zero component; sparse-representation overhead (masks + pointers) is
  charged with the non-zero component, as the paper does ("bit-mask and
  pointer overheads ... for their non-zero data"). Filters are amortised
  over the mini-batch (fetched once, reused across images).

The per-op constants are *calibrated*: their ratios are chosen so that,
with the op counts our simulators measure on Table 3 densities, the
paper's headline relations emerge (SparTen ~2x Dense compute energy yet
~1.5x below One-sided; ~1.4x/1.3x memory reductions). The zero/non-zero
structure is measured, not assumed. See DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory import layer_traffic_detailed
from repro.nets.layers import ConvLayerSpec
from repro.sim.results import LayerResult

__all__ = ["EnergyBreakdown", "PER_OP_PJ", "DRAM_PJ_PER_BYTE", "layer_energy"]

#: Calibrated per-multiply energies (pJ): MAC + buffer accesses + join
#: machinery, per scheme family.
PER_OP_PJ = {
    "dense": 0.6,
    "dense_naive": 1.7,
    "one_sided": 5.6,
    "two_sided": 8.6,
}

#: DRAM access energy per byte (pJ), a standard ~45 nm LPDDR-class figure.
DRAM_PJ_PER_BYTE = 20.0

_SCHEME_FAMILY = {
    "dense": "dense",
    "dense_naive": "dense_naive",
    "one_sided": "one_sided",
    "sparten_no_gb": "two_sided",
    "sparten_gb_s": "two_sided",
    "sparten": "two_sided",
}

_TRAFFIC_SCHEME = {
    "dense": "dense",
    "dense_naive": "dense",
    "one_sided": "one_sided",
    "sparten_no_gb": "two_sided",
    "sparten_gb_s": "two_sided",
    "sparten": "two_sided",
}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (pJ) of one layer under one scheme, Figure 13's four bars."""

    compute_nonzero: float
    compute_zero: float
    memory_nonzero: float
    memory_zero: float

    @property
    def compute_total(self) -> float:
        return self.compute_nonzero + self.compute_zero

    @property
    def memory_total(self) -> float:
        return self.memory_nonzero + self.memory_zero

    @property
    def total(self) -> float:
        return self.compute_total + self.memory_total

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_nonzero=self.compute_nonzero + other.compute_nonzero,
            compute_zero=self.compute_zero + other.compute_zero,
            memory_nonzero=self.memory_nonzero + other.memory_nonzero,
            memory_zero=self.memory_zero + other.memory_zero,
        )


def layer_energy(
    result: LayerResult,
    spec: ConvLayerSpec,
    batch: int = 1,
    chunk_size: int = 128,
) -> EnergyBreakdown:
    """Energy for one layer from a simulation result.

    *spec* must be the simulated layer (for the traffic model); *batch*
    amortises filter traffic over reused images (the default charges the
    full filter fetch to the image, which is what reproduces the paper's
    memory-energy relations). The result's scheme selects the per-op
    constants; SCNN schemes are rejected, as the paper excludes SCNN from
    the energy comparison ("its complexity is hard to model in enough
    detail for meaningful energy results").
    """
    if result.scheme.startswith("scnn"):
        raise ValueError("the paper does not model SCNN energy; neither do we")
    try:
        family = _SCHEME_FAMILY[result.scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {result.scheme!r}") from None
    per_op = PER_OP_PJ[family]

    ops_nonzero = result.breakdown.nonzero_macs
    ops_zero = result.breakdown.zero_macs
    compute_nonzero = ops_nonzero * per_op
    compute_zero = ops_zero * per_op

    input_t, filter_t, output_t = layer_traffic_detailed(
        spec, _TRAFFIC_SCHEME[result.scheme], chunk_size=chunk_size
    )
    scale = 1.0 / max(1, batch)
    mem_nonzero = (
        input_t.nonzero_bytes
        + input_t.overhead_bytes
        + (filter_t.nonzero_bytes + filter_t.overhead_bytes) * scale
        + output_t.nonzero_bytes
        + output_t.overhead_bytes
    ) * DRAM_PJ_PER_BYTE
    mem_zero = (
        input_t.zero_bytes + filter_t.zero_bytes * scale + output_t.zero_bytes
    ) * DRAM_PJ_PER_BYTE
    return EnergyBreakdown(
        compute_nonzero=compute_nonzero,
        compute_zero=compute_zero,
        memory_nonzero=mem_nonzero,
        memory_zero=mem_zero,
    )
