"""The TPU-like dense accelerator baseline (paper Sections 4-5).

Every tensor element is multiplied -- zeros included -- so the simulator
"captures the zero computations, which provide opportunity for the sparse
architectures, without imposing sparse computation overheads". With equal
MAC counts (Table 2) and perfectly regular dataflow, a dense cluster's
time for one output cell and one filter is exactly the dot-product length
``k*k*C`` (padding zeros included, as an im2col systolic pipeline would
stream them); the only losses are inter-cluster (uneven position
partitioning, insufficient work) and idle units when a layer's filter
count is not a multiple of the cluster width.
"""

from __future__ import annotations

import numpy as np

from repro import profiling, telemetry
from repro.arch.memory import layer_traffic
from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import LayerData
from repro.sim.config import HardwareConfig
from repro.sim.kernels import ChunkWork, batch_workloads
from repro.sim.results import Breakdown, LayerResult, observability_extras

__all__ = ["simulate_dense"]


def simulate_dense(
    spec: ConvLayerSpec,
    cfg: HardwareConfig,
    data: LayerData | None = None,
    work: ChunkWork | None = None,
    seed: int = 0,
    naive_buffers: bool = False,
) -> LayerResult:
    """Simulate one layer on the dense accelerator.

    ``naive_buffers`` tags the result as the Dense-naive configuration of
    Figure 13 (identical performance; the energy model charges SparTen's
    buffering instead of the dense 8 B/MAC).
    """
    units = cfg.units_per_cluster
    n_clusters = cfg.n_clusters
    dot_length = spec.kernel * spec.kernel * spec.in_channels
    n_groups = int(np.ceil(spec.n_filters / units))

    mode = profiling.profile_mode()
    profile = mode != profiling.MODE_OFF
    bins = profiling.timeline_bins() if mode == profiling.MODE_TIMELINE else 0

    cluster_cycles = np.zeros(n_clusters, dtype=np.float64)
    nonzero = 0.0
    total_mult_slots = 0.0
    if profile:
        busy_c = np.zeros(n_clusters, dtype=np.float64)
        zero_c = np.zeros(n_clusters, dtype=np.float64)
        wait_c = np.zeros(n_clusters, dtype=np.float64)
        tl_cycles = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None
        tl_busy = np.zeros((n_clusters, bins), dtype=np.float64) if bins else None

    for img_data, img_work in batch_workloads(
        spec, cfg, seed, data, work, need_counts=False
    ):
        assignment = img_work.assignment
        # Every owned position costs n_groups * dot_length cycles.
        img_cycles = (
            assignment.cluster_positions.astype(np.float64) * n_groups * dot_length
        )
        cluster_cycles += img_cycles
        nonzero += float(np.sum(img_work.match_sums * assignment.weight_of))
        # Multiplies actually issued: full dot products on every unit that
        # holds a filter (idle units in a partial last group issue none).
        total_mult_slots += float(
            assignment.cluster_positions.sum() * spec.n_filters * dot_length
        )
        if profile:
            weights = assignment.weight_of
            cluster_of = assignment.cluster_of
            issued_c = (
                assignment.cluster_positions.astype(np.float64)
                * spec.n_filters
                * dot_length
            )
            useful_c = np.bincount(
                cluster_of,
                weights=img_work.match_sums * weights,
                minlength=n_clusters,
            )
            busy_c += useful_c
            zero_c += issued_c - useful_c
            wait_c += img_cycles * units - issued_c
            if bins:
                per_pos = np.full(cluster_of.size, float(n_groups * dot_length))
                img_tl_cycles, img_tl_busy = profiling.positional_timeline(
                    cluster_of,
                    per_pos * weights,
                    np.full(cluster_of.size, float(spec.n_filters * dot_length))
                    * weights,
                    n_clusters,
                    bins,
                )
                tl_cycles += img_tl_cycles
                tl_busy += img_tl_busy

    layer_cycles = float(cluster_cycles.max())
    zero = total_mult_slots - nonzero
    # Idle units in the last filter group while their cluster is busy.
    busy_slots = float(cluster_cycles.sum()) * units
    intra = busy_slots - total_mult_slots
    inter = float(np.sum((layer_cycles - cluster_cycles) * units))
    breakdown = Breakdown(
        nonzero_macs=nonzero, zero_macs=zero, intra_loss=intra, inter_loss=inter
    )
    scheme = "dense_naive" if naive_buffers else "dense"
    extras = observability_extras(breakdown)
    telemetry.count(f"sim.{scheme}.layers")
    telemetry.count(f"sim.{scheme}.cycles", layer_cycles)
    telemetry.gauge(f"sim.{scheme}.mac_utilization", extras["mac_utilization"])
    counters = None
    if profile:
        counters = profiling.CounterSet(
            scheme=scheme,
            n_clusters=n_clusters,
            units_per_cluster=units,
            total_cycles=layer_cycles,
            busy=busy_c,
            filter_zero=zero_c,
            barrier_wait=wait_c,
            permute_stall=np.zeros(n_clusters, dtype=np.float64),
            imbalance_idle=(layer_cycles - cluster_cycles) * units,
            memory_stall=np.zeros(n_clusters, dtype=np.float64),
            timeline_cycles=tl_cycles,
            timeline_busy=tl_busy,
        )
    result = LayerResult(
        scheme=scheme,
        layer_name=spec.name,
        cycles=layer_cycles,
        compute_cycles=layer_cycles,
        total_macs=cfg.total_macs,
        breakdown=breakdown,
        traffic=layer_traffic(spec, scheme="dense", chunk_size=cfg.chunk_size),
        extras={
            **extras,
            "filter_groups": n_groups,
            "dot_length": dot_length,
        },
        counters=counters,
    )
    profiling.record_layer(result)
    return result
