"""Result records: cycles plus the four-way execution-time breakdown.

Figures 10-12 decompose each architecture's execution time into
(a) non-zero computation, (b) zero computation, (c) intra-cluster
(intra-PE) loss, and (d) inter-cluster (inter-PE) loss. We account in
*MAC-cycles*: one MAC-cycle is one multiplier for one cycle, so a layer
occupies ``cycles x total_macs`` MAC-cycles that split exactly into the
four components. Normalising by the dense architecture's total yields the
paper's stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, log
from typing import TYPE_CHECKING

from repro.arch.memory import Traffic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (profiling -> sim)
    from repro.profiling.counters import CounterSet

__all__ = [
    "Breakdown",
    "LayerResult",
    "NetworkResult",
    "geomean",
    "observability_extras",
]


@dataclass(frozen=True)
class Breakdown:
    """MAC-cycle decomposition of one layer's execution.

    Attributes:
        nonzero_macs: useful multiplies (both operands non-zero and the
            product contributes to an output).
        zero_macs: multiplies wasted on zero operands (dense/one-sided)
            or on products that cannot contribute (SCNN with non-unit
            stride).
        intra_loss: MAC-cycles idle inside busy clusters/PEs (barrier
            imbalance, missing filters, fractional multiplier-array use).
        inter_loss: MAC-cycles of clusters/PEs idle while the slowest
            one finishes the layer.
    """

    nonzero_macs: float
    zero_macs: float
    intra_loss: float
    inter_loss: float

    @property
    def total(self) -> float:
        return self.nonzero_macs + self.zero_macs + self.intra_loss + self.inter_loss

    def scaled(self, factor: float) -> "Breakdown":
        return Breakdown(
            nonzero_macs=self.nonzero_macs * factor,
            zero_macs=self.zero_macs * factor,
            intra_loss=self.intra_loss * factor,
            inter_loss=self.inter_loss * factor,
        )

    def __add__(self, other: "Breakdown") -> "Breakdown":
        return Breakdown(
            nonzero_macs=self.nonzero_macs + other.nonzero_macs,
            zero_macs=self.zero_macs + other.zero_macs,
            intra_loss=self.intra_loss + other.intra_loss,
            inter_loss=self.inter_loss + other.inter_loss,
        )


@dataclass(frozen=True)
class LayerResult:
    """One (layer, scheme) simulation outcome.

    Attributes:
        scheme: architecture label (``dense``, ``one_sided``,
            ``sparten_no_gb``, ``sparten_gb_s``, ``sparten``, ``scnn``,
            ``scnn_one_sided``, ``scnn_dense``).
        layer_name: the simulated layer.
        cycles: layer latency in cycles (compute-bound unless a roofline
            bound was applied; then the bounded value).
        compute_cycles: the unbounded compute latency.
        total_macs: multipliers in the machine (cycles x total_macs =
            breakdown total, up to sampling rescale rounding).
        breakdown: the four-way MAC-cycle decomposition.
        traffic: off-chip traffic for the layer (per image, filters
            amortised over the batch).
        extras: model-specific diagnostics (permute cycles, barrier
            counts, utilisation, ...).
        counters: per-cluster hardware counters
            (:class:`repro.profiling.counters.CounterSet`), attached by
            the simulators unless ``REPRO_PROFILE=off``. Excluded from
            equality: counters are observability, never figure values.
    """

    scheme: str
    layer_name: str
    cycles: float
    compute_cycles: float
    total_macs: int
    breakdown: Breakdown
    traffic: Traffic
    extras: dict = field(default_factory=dict)
    counters: "CounterSet | None" = field(default=None, compare=False)

    def speedup_over(self, baseline: "LayerResult") -> float:
        """Speedup of this result relative to *baseline* (same layer)."""
        if self.layer_name != baseline.layer_name:
            raise ValueError(
                f"layer mismatch: {self.layer_name} vs {baseline.layer_name}"
            )
        if self.cycles <= 0:
            raise ValueError("cannot compute speedup with non-positive cycles")
        return baseline.cycles / self.cycles


@dataclass(frozen=True)
class NetworkResult:
    """All layer results of one network under one scheme."""

    scheme: str
    network_name: str
    layers: tuple[LayerResult, ...]

    def layer(self, name: str) -> LayerResult:
        for result in self.layers:
            if result.layer_name == name:
                return result
        raise KeyError(f"no result for layer {name!r}")

    def counters(self) -> "CounterSet | None":
        """Whole-network counter aggregate: the per-layer sets summed.

        ``None`` when any layer ran without counters
        (``REPRO_PROFILE=off``) or the network has no layers.
        """
        per_layer = [result.counters for result in self.layers]
        if not per_layer or any(c is None for c in per_layer):
            return None
        total = per_layer[0]
        for counter_set in per_layer[1:]:
            total = total + counter_set
        return total

    def geomean_speedup_over(
        self, baseline: "NetworkResult", exclude: tuple[str, ...] = ()
    ) -> float:
        """Geometric-mean per-layer speedup, optionally excluding layers."""
        if len(self.layers) != len(baseline.layers):
            raise ValueError(
                f"no layers can be paired: network {self.network_name!r} "
                f"({self.scheme}) has {len(self.layers)} layers but baseline "
                f"{baseline.network_name!r} ({baseline.scheme}) has "
                f"{len(baseline.layers)}"
            )
        speedups = [
            mine.speedup_over(base)
            for mine, base in zip(self.layers, baseline.layers)
            if mine.layer_name not in exclude
        ]
        if not speedups:
            raise ValueError(
                f"no layers left after exclusions on network "
                f"{self.network_name!r}: layers "
                f"{[r.layer_name for r in self.layers]} are all excluded by "
                f"{sorted(exclude)}"
            )
        return geomean(speedups)


def observability_extras(breakdown: Breakdown) -> dict:
    """The extras keys every simulator emits, derived from a breakdown.

    One schema across Dense/SparTen/SCNN/dynamic so reports can compare
    schemes column-for-column: utilisation plus the zero/intra/inter
    MAC-cycle splits (inter is the load-imbalance idle the greedy
    balancers target).
    """
    total = breakdown.total
    return {
        "mac_utilization": breakdown.nonzero_macs / total if total > 0 else 0.0,
        "zero_mac_cycles": breakdown.zero_macs,
        "imbalance_idle_mac_cycles": breakdown.inter_loss,
        "intra_idle_mac_cycles": breakdown.intra_loss,
    }


def geomean(values: list[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return exp(sum(log(v) for v in values) / len(values))
