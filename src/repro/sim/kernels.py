"""Vectorised chunk-level work kernels shared by the simulators.

The cycle models need, for every output position and every chunk of the
linearised filter/window vectors, the *match count* -- the number of
positions non-zero in both the input window chunk and a filter chunk.
That count is exactly the compute unit's busy cycles for that chunk
(one multiply-accumulate per matched pair), so the simulators reduce over
these arrays instead of walking the step-wise functional model; tests
assert both paths agree.

The key identity: the match count between a binary window row and a
binary filter row is their integer dot product, so a chunked
im2col-matmul over the masks yields every (chunk, position, filter)
match count at BLAS speed.

Positions can be *sampled* (evenly spaced within each cluster's slice,
with exact rescaling weights) to bound the cost of very large layers;
``position_sample=None`` is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nets.synthesis import LayerData
from repro.sim.config import HardwareConfig
from repro.tensor.sparsemap import padded_length
from repro.tensor.storage import even_slices

__all__ = ["PositionAssignment", "ChunkWork", "assign_positions", "compute_chunk_work"]


@dataclass(frozen=True)
class PositionAssignment:
    """Which output positions each cluster owns, and which are simulated.

    Attributes:
        indices: flat (row-major) output-position indices simulated.
        cluster_of: owning cluster of each simulated position.
        weight_of: rescale weight of each simulated position (1.0 when
            exact; cluster_positions/sampled when sampled).
        cluster_positions: true position counts per cluster.
    """

    indices: np.ndarray
    cluster_of: np.ndarray
    weight_of: np.ndarray
    cluster_positions: np.ndarray

    @property
    def n_clusters(self) -> int:
        return int(self.cluster_positions.size)


def assign_positions(
    n_positions: int, n_clusters: int, position_sample: int | None
) -> PositionAssignment:
    """Slice output positions across clusters; optionally sample each slice.

    Positions are row-major over the output map, sliced contiguously (the
    paper's X/Y output slicing); sampling takes evenly spaced positions
    within each slice so spatial structure is preserved.
    """
    if n_positions < 1:
        raise ValueError(f"need at least one output position, got {n_positions}")
    slices = even_slices(n_positions, n_clusters)
    counts = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
    index_blocks = []
    cluster_blocks = []
    weight_blocks = []
    for cluster, (lo, hi) in enumerate(slices):
        n = hi - lo
        if n == 0:
            continue
        if position_sample is not None and n > position_sample:
            picks = lo + np.unique(
                np.linspace(0, n - 1, position_sample).round().astype(np.int64)
            )
        else:
            picks = np.arange(lo, hi, dtype=np.int64)
        index_blocks.append(picks)
        cluster_blocks.append(np.full(picks.size, cluster, dtype=np.int64))
        weight_blocks.append(np.full(picks.size, n / picks.size, dtype=np.float64))
    return PositionAssignment(
        indices=np.concatenate(index_blocks),
        cluster_of=np.concatenate(cluster_blocks),
        weight_of=np.concatenate(weight_blocks),
        cluster_positions=counts,
    )


@dataclass(frozen=True)
class ChunkWork:
    """Per-chunk work counts at the simulated output positions.

    Attributes:
        counts: (n_chunks, n_sel, F) uint8 match counts, or ``None`` when
            the caller only needs one-sided/dense quantities.
        input_pop: (n_chunks, n_sel) non-zero input-window counts per
            chunk (one-sided work; identical for every compute unit).
        match_sums: (n_sel,) total matches across all chunks and filters
            (the layer's useful MACs at each position).
        assignment: the position assignment the arrays are indexed by.
        n_chunks: chunks per linearised filter/window vector.
        filter_chunk_nnz: (F, n_chunks) filter chunk non-zero counts
            (greedy balancing's density proxy).
    """

    counts: np.ndarray | None
    input_pop: np.ndarray
    match_sums: np.ndarray
    assignment: PositionAssignment
    n_chunks: int
    filter_chunk_nnz: np.ndarray


def compute_chunk_work(
    data: LayerData,
    cfg: HardwareConfig,
    need_counts: bool = True,
) -> ChunkWork:
    """Compute all chunk-level work arrays for one layer workload.

    Chunks follow the storage layout: Z-first, each kernel position's
    channels padded to whole chunks, so chunk
    ``(ky*k + kx) * cpc + cz`` covers channels ``[cz*n, (cz+1)*n)`` at
    kernel position (ky, kx).
    """
    spec = data.spec
    chunk = cfg.chunk_size
    padded_c = padded_length(spec.in_channels, chunk)
    cpc = padded_c // chunk
    n_chunks = spec.kernel * spec.kernel * cpc

    assignment = assign_positions(
        spec.out_positions, cfg.n_clusters, cfg.position_sample
    )
    sel = assignment.indices
    oy = sel // spec.out_width
    ox = sel % spec.out_width

    in_mask = data.input_mask
    if spec.padding:
        p = spec.padding
        padded = np.zeros(
            (spec.in_height + 2 * p, spec.in_width + 2 * p, spec.in_channels),
            dtype=bool,
        )
        padded[p : p + spec.in_height, p : p + spec.in_width] = in_mask
    else:
        padded = in_mask

    filt = data.filter_masks  # (F, k, k, C)
    n_filters = spec.n_filters
    n_sel = sel.size

    counts = (
        np.zeros((n_chunks, n_sel, n_filters), dtype=np.uint8) if need_counts else None
    )
    input_pop = np.zeros((n_chunks, n_sel), dtype=np.int32)
    match_sums = np.zeros(n_sel, dtype=np.float64)
    filter_chunk_nnz = np.zeros((n_filters, n_chunks), dtype=np.int64)

    rows = oy * spec.stride
    cols = ox * spec.stride
    for ky in range(spec.kernel):
        for kx in range(spec.kernel):
            window = padded[rows + ky, cols + kx, :]  # (n_sel, C)
            for cz in range(cpc):
                lo = cz * chunk
                hi = min(lo + chunk, spec.in_channels)
                c_idx = (ky * spec.kernel + kx) * cpc + cz
                if lo >= spec.in_channels:
                    continue  # pure padding chunk: zero work
                a = window[:, lo:hi].astype(np.float32)
                b = filt[:, ky, kx, lo:hi].astype(np.float32)
                filter_chunk_nnz[:, c_idx] = b.sum(axis=1).astype(np.int64)
                input_pop[c_idx] = a.sum(axis=1).astype(np.int32)
                if need_counts:
                    counts[c_idx] = np.rint(a @ b.T).astype(np.uint8)
                    match_sums += counts[c_idx].sum(axis=1, dtype=np.int64)
                else:
                    match_sums += a @ b.sum(axis=0)

    return ChunkWork(
        counts=counts,
        input_pop=input_pop,
        match_sums=match_sums,
        assignment=assignment,
        n_chunks=n_chunks,
        filter_chunk_nnz=filter_chunk_nnz,
    )
