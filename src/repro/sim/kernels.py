"""Vectorised chunk-level work kernels shared by the simulators.

The cycle models need, for every output position and every chunk of the
linearised filter/window vectors, the *match count* -- the number of
positions non-zero in both the input window chunk and a filter chunk.
That count is exactly the compute unit's busy cycles for that chunk
(one multiply-accumulate per matched pair), so the simulators reduce over
these arrays instead of walking the step-wise functional model; tests
assert both paths agree.

The key identity: the match count between a binary window row and a
binary filter row is their integer dot product -- equivalently the
popcount of the AND of the two bit-packed masks. The kernel gathers the
im2col window-mask matrix *once* per layer (one boolean tensor indexed by
kernel position), bit-packs both operands with :func:`np.packbits`, and
then:

- ``input_pop`` / ``filter_chunk_nnz`` come from a byte-popcount lookup
  table over the packed masks (no float work at all);
- match counts come from the compiled AND+popcount kernel in
  :mod:`repro.sim.native` when it is available, else from a blocked
  float32 batched GEMM over the boolean masks;
- the ``need_counts=False`` branch reduces against the per-chunk filter
  column sums with one batched matvec, never materialising the
  ``(n_chunks, n_sel, F)`` tensor.

Every intermediate on every path is an exact small integer (far below
2**24, float32's exact-integer range), so all paths are bit-identical to
the original per-chunk loop; the tests pin that equivalence.

Positions can be *sampled* (evenly spaced within each cluster's slice,
with exact rescaling weights) to bound the cost of very large layers;
``position_sample=None`` is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.nets.synthesis import LayerData
from repro.sim import native, reduce
from repro.sim.config import HardwareConfig
from repro.tensor.sparsemap import padded_length
from repro.tensor.storage import even_slices

__all__ = [
    "PositionAssignment",
    "PackedMasks",
    "ChunkWork",
    "assign_positions",
    "batch_workloads",
    "compute_chunk_work",
    "count_dtype",
]

#: Popcount of each byte value, for bit-packed mask reductions.
_POPCOUNT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.int64)
)

#: float32 window elements per GEMM block in the fallback path (bounds
#: the temporary to a few MB regardless of layer size).
_GEMM_BLOCK_ELEMS = 4 << 20


def count_dtype(chunk_size: int) -> np.dtype:
    """Smallest unsigned dtype holding a full-chunk match count.

    A fully dense chunk matches ``chunk_size`` times, so uint8 only works
    up to 255 -- at ``chunk_size=256`` it would wrap 256 to 0.
    """
    if chunk_size <= np.iinfo(np.uint8).max:
        return np.dtype(np.uint8)
    if chunk_size <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


@dataclass(frozen=True)
class PositionAssignment:
    """Which output positions each cluster owns, and which are simulated.

    Attributes:
        indices: flat (row-major) output-position indices simulated.
        cluster_of: owning cluster of each simulated position.
        weight_of: rescale weight of each simulated position (1.0 when
            exact; cluster_positions/sampled when sampled).
        cluster_positions: true position counts per cluster.
    """

    indices: np.ndarray
    cluster_of: np.ndarray
    weight_of: np.ndarray
    cluster_positions: np.ndarray

    @property
    def n_clusters(self) -> int:
        return int(self.cluster_positions.size)


def assign_positions(
    n_positions: int, n_clusters: int, position_sample: int | None
) -> PositionAssignment:
    """Slice output positions across clusters; optionally sample each slice.

    Positions are row-major over the output map, sliced contiguously (the
    paper's X/Y output slicing); sampling takes evenly spaced positions
    within each slice so spatial structure is preserved. Because the
    picks are rounded then deduplicated with ``np.unique``, a cluster can
    end up with *fewer* than ``position_sample`` picks; the weights are
    computed from the actual pick count (``n / picks.size``), so each
    cluster's weights always sum exactly to its true position count.
    """
    if n_positions < 1:
        raise ValueError(f"need at least one output position, got {n_positions}")
    if position_sample is not None and position_sample < 1:
        raise ValueError(
            f"position_sample must be >= 1 or None, got {position_sample}"
        )
    slices = even_slices(n_positions, n_clusters)
    counts = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
    index_blocks = []
    cluster_blocks = []
    weight_blocks = []
    for cluster, (lo, hi) in enumerate(slices):
        n = hi - lo
        if n == 0:
            continue
        if position_sample is not None and n > position_sample:
            picks = lo + np.unique(
                np.linspace(0, n - 1, position_sample).round().astype(np.int64)
            )
        else:
            picks = np.arange(lo, hi, dtype=np.int64)
        index_blocks.append(picks)
        cluster_blocks.append(np.full(picks.size, cluster, dtype=np.int64))
        weight_blocks.append(np.full(picks.size, n / picks.size, dtype=np.float64))
    return PositionAssignment(
        indices=np.concatenate(index_blocks),
        cluster_of=np.concatenate(cluster_blocks),
        weight_of=np.concatenate(weight_blocks),
        cluster_positions=counts,
    )


@dataclass(frozen=True)
class PackedMasks:
    """Bit-packed window/filter masks in the native kernels' layout.

    When fusion is active these replace the counts tensor as the cached
    representation: ~``chunk_size / 8`` the bytes per (position, chunk)
    row, and the fused reduction engine streams match counts from them
    without ever materializing ``(n_chunks, n_sel, F)``.

    Attributes:
        win_words: (n_chunks, n_sel, words) uint64 window masks.
        filt_words: (n_chunks, words, F) uint64 word-major filter masks.
        chunk_size: mask bits per chunk (trailing word bits are zero).
    """

    win_words: np.ndarray
    filt_words: np.ndarray
    chunk_size: int

    @property
    def nbytes(self) -> int:
        return int(self.win_words.nbytes + self.filt_words.nbytes)


@dataclass(frozen=True)
class ChunkWork:
    """Per-chunk work counts at the simulated output positions.

    Exactly one of ``counts`` / ``packed`` is set when two-sided work was
    requested (``REPRO_FUSE`` decides which); both are ``None`` when the
    caller only needs one-sided/dense quantities.

    Attributes:
        counts: (n_chunks, n_sel, F) match counts, or ``None`` when the
            workload is fused (see ``packed``) or when only one-sided
            quantities were requested. The dtype is the smallest unsigned
            integer that can hold ``chunk_size`` (uint8 up to 255, see
            :func:`count_dtype`).
        packed: the bit-packed masks the fused reduction engine consumes
            instead of ``counts``, or ``None`` when counts are
            materialized (:mod:`repro.sim.reduce` explains the modes).
        input_pop: (n_chunks, n_sel) non-zero input-window counts per
            chunk (one-sided work; identical for every compute unit).
        match_sums: (n_sel,) total matches across all chunks and filters
            (the layer's useful MACs at each position).
        assignment: the position assignment the arrays are indexed by.
        n_chunks: chunks per linearised filter/window vector.
        filter_chunk_nnz: (F, n_chunks) filter chunk non-zero counts
            (greedy balancing's density proxy).
    """

    counts: np.ndarray | None
    input_pop: np.ndarray
    match_sums: np.ndarray
    assignment: PositionAssignment
    n_chunks: int
    filter_chunk_nnz: np.ndarray
    packed: PackedMasks | None = None

    def materialized_counts(self) -> np.ndarray:
        """The counts tensor, regenerating it from packed masks if fused.

        For consumers that genuinely need per-filter counts (balance
        oracles, traces, characterisation). Exact on every path, but
        O(n_chunks * n_sel * F) memory -- simulators should reduce
        through :func:`repro.sim.reduce.reduce_scheme` instead.
        """
        if self.counts is not None:
            return self.counts
        if self.packed is None:
            raise ValueError(
                "workload carries no match counts (computed with "
                "need_counts=False)"
            )
        telemetry.count("kernel.counts_rematerialized")
        return reduce.counts_from_packed(self.packed)


def compute_chunk_work(
    data: LayerData,
    cfg: HardwareConfig,
    need_counts: bool = True,
) -> ChunkWork:
    """Compute all chunk-level work arrays for one layer workload.

    Chunks follow the storage layout: Z-first, each kernel position's
    channels padded to whole chunks, so chunk
    ``(ky*k + kx) * cpc + cz`` covers channels ``[cz*n, (cz+1)*n)`` at
    kernel position (ky, kx).
    """
    spec = data.spec
    chunk = cfg.chunk_size
    padded_c = padded_length(spec.in_channels, chunk)
    cpc = padded_c // chunk
    kk = spec.kernel * spec.kernel
    n_chunks = kk * cpc

    assignment = assign_positions(
        spec.out_positions, cfg.n_clusters, cfg.position_sample
    )
    sel = assignment.indices
    oy = sel // spec.out_width
    ox = sel % spec.out_width

    in_mask = data.input_mask
    if spec.padding:
        p = spec.padding
        padded = np.zeros(
            (spec.in_height + 2 * p, spec.in_width + 2 * p, spec.in_channels),
            dtype=bool,
        )
        padded[p : p + spec.in_height, p : p + spec.in_width] = in_mask
    else:
        padded = in_mask

    n_filters = spec.n_filters
    n_sel = sel.size
    rows = oy * spec.stride
    cols = ox * spec.stride

    # One im2col gather: every selected window's mask, chunk-padded so
    # partial channel chunks carry zeros exactly like the storage layout.
    windows = np.zeros((n_sel, n_chunks, chunk), dtype=bool)
    wview = windows.reshape(n_sel, kk, padded_c)
    for idx in range(kk):
        ky, kx = divmod(idx, spec.kernel)
        wview[:, idx, : spec.in_channels] = padded[rows + ky, cols + kx, :]
    fmask = np.zeros((n_filters, n_chunks, chunk), dtype=bool)
    fmask.reshape(n_filters, kk, padded_c)[
        :, :, : spec.in_channels
    ] = data.filter_masks.reshape(n_filters, kk, spec.in_channels)

    # One-sided quantities from byte popcounts over the packed masks.
    win_packed = np.packbits(windows, axis=-1)  # (n_sel, n_chunks, ceil(chunk/8))
    filt_packed = np.packbits(fmask, axis=-1)  # (F, n_chunks, ceil(chunk/8))
    telemetry.count("kernel.positions_simulated", n_sel)
    telemetry.count("kernel.bytes_packed", win_packed.nbytes + filt_packed.nbytes)
    input_pop = np.ascontiguousarray(
        _POPCOUNT[win_packed].sum(axis=-1, dtype=np.int32).T
    )
    filter_chunk_nnz = _POPCOUNT[filt_packed].sum(axis=-1, dtype=np.int64)

    counts = None
    packed = None
    if need_counts:
        dtype = count_dtype(chunk)
        words = (chunk + 63) // 64
        # (n_chunks, n_sel, words) window words; (n_chunks, words, F)
        # word-major filter words -- the native kernel's layout contract.
        w64 = np.ascontiguousarray(_as_words(win_packed, words).transpose(1, 0, 2))
        f64 = np.ascontiguousarray(_as_words(filt_packed, words).transpose(1, 2, 0))
        counts_nbytes = n_chunks * n_sel * n_filters * dtype.itemsize
        if reduce.fusion_active(counts_nbytes):
            # Fused mode: the simulators reduce straight from the packed
            # masks; the counts tensor is never materialized.
            telemetry.count("kernel.fused_workload")
            packed = PackedMasks(win_words=w64, filt_words=f64, chunk_size=chunk)
            match_sums = _match_totals_gemm(windows, fmask)
        else:
            got = native.match_counts(w64, f64, n_filters, dtype)
            if got is not None:
                telemetry.count("kernel.native_dispatch")
                counts, pos_sums = got
                match_sums = pos_sums.astype(np.float64)
            else:
                telemetry.count("kernel.gemm_dispatch")
                counts, match_sums = _match_counts_gemm(windows, fmask, dtype)
    else:
        telemetry.count("kernel.matvec_dispatch")
        match_sums = _match_totals_gemm(windows, fmask)

    return ChunkWork(
        counts=counts,
        input_pop=input_pop,
        match_sums=match_sums,
        assignment=assignment,
        n_chunks=n_chunks,
        filter_chunk_nnz=filter_chunk_nnz,
        packed=packed,
    )


def batch_workloads(
    spec,
    cfg: HardwareConfig,
    seed: int,
    data: LayerData | None,
    work: ChunkWork | None,
    need_counts: bool,
):
    """Yield each batch image's ``(data, work)``, memoised when possible.

    When *data* is supplied the caller owns the (single-image) workload
    and only missing chunk work is computed. Otherwise every image routes
    through :func:`repro.core.workload.get_workload`, so batched
    simulator runs hit the LRU and disk store exactly like the
    single-image comparison path does.
    """
    if data is not None:
        if work is None:
            work = compute_chunk_work(data, cfg, need_counts=need_counts)
        yield data, work
        return
    # Lazy import: repro.core.__init__ pulls in the simulators, which
    # import this module.
    from repro.core import workload

    for image in range(cfg.batch):
        yield workload.get_workload(spec, cfg, seed + image, need_counts=need_counts)


def _as_words(packed: np.ndarray, words: int) -> np.ndarray:
    """View packed mask bytes as uint64 words, zero-padding the tail."""
    nbytes = packed.shape[-1]
    if nbytes != words * 8:
        widened = np.zeros(packed.shape[:-1] + (words * 8,), dtype=np.uint8)
        widened[..., :nbytes] = packed
        packed = widened
    return packed.view(np.uint64)


def _match_counts_gemm(
    windows: np.ndarray, fmask: np.ndarray, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Fallback match counts: blocked batched float32 GEMM over the masks.

    Exact because every product/sum is an integer below 2**24.
    """
    n_sel, n_chunks, chunk = windows.shape
    n_filters = fmask.shape[0]
    b = fmask.transpose(1, 2, 0).astype(np.float32)  # (n_chunks, chunk, F)
    counts = np.empty((n_chunks, n_sel, n_filters), dtype=dtype)
    match_sums = np.zeros(n_sel, dtype=np.float64)
    block = max(1, _GEMM_BLOCK_ELEMS // max(1, n_chunks * chunk))
    for lo in range(0, n_sel, block):
        hi = min(lo + block, n_sel)
        a = windows[lo:hi].transpose(1, 0, 2).astype(np.float32)
        blk = np.matmul(a, b).astype(dtype)
        counts[:, lo:hi] = blk
        match_sums[lo:hi] = blk.sum(axis=(0, 2), dtype=np.int64)
    return counts, match_sums


def _match_totals_gemm(windows: np.ndarray, fmask: np.ndarray) -> np.ndarray:
    """Per-position match totals without the counts tensor (one matvec).

    Summing filters first is exact: per-chunk column sums are <= F, and
    the accumulation runs in float64 (every partial sum is an integer,
    far below 2**53). The chunk axis is flattened into the dot length so
    each block is a single large GEMV -- a batched ``(n_chunks, blk,
    chunk) @ (n_chunks, chunk, 1)`` degenerates into ``n_chunks`` tiny
    matvecs and runs an order of magnitude slower.
    """
    n_sel, n_chunks, chunk = windows.shape
    colsums = fmask.sum(axis=0, dtype=np.float64).reshape(-1)  # (n_chunks * chunk,)
    match_sums = np.empty(n_sel, dtype=np.float64)
    block = max(1, _GEMM_BLOCK_ELEMS // max(1, n_chunks * chunk))
    flat = windows.reshape(n_sel, n_chunks * chunk)
    for lo in range(0, n_sel, block):
        hi = min(lo + block, n_sel)
        match_sums[lo:hi] = flat[lo:hi].astype(np.float64) @ colsums
    return match_sums
