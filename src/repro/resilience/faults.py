"""Deterministic fault injection (``REPRO_FAULT``).

Chaos testing only earns its keep when a failing run can be replayed:
every injection decision here is either a pure function of
``(REPRO_FAULT_SEED, kind, token, attempt)`` or an explicit per-process
budget, never a wall-clock or PRNG-state coin flip. Two runs with the
same environment inject the same faults at the same sites.

Specification grammar (comma-separated ``kind:value`` pairs)::

    REPRO_FAULT=worker_crash:0.1,cache_corrupt:2,timeout:1

- ``value`` in ``(0, 1)`` -- a *rate*: the fault fires at call sites
  whose deterministic hash of (seed, kind, token, attempt) falls below
  the rate. Retries hash a new attempt number, so a crashed item draws
  independently on its retry.
- ``value`` >= 1 (integer) -- a *budget*: the first N calls of that kind
  in this process fire, then the fault goes quiet. Budgets are
  per-process (each spawn worker has its own), which makes "every worker
  crashes its first item" expressible.

Kinds understood by :func:`fault_point` (the worker-side hook in
:mod:`repro.core.parallel`):

- ``worker_crash`` -- raise :class:`InjectedFault` (a failed item; the
  pool survives, the parent retries).
- ``worker_kill`` -- ``os._exit(87)`` (a dead process; the pool breaks,
  completed items are kept, the rest recompute serially).
- ``timeout`` -- sleep ``REPRO_FAULT_SLEEP`` seconds (default 0.5) to
  trip the ``REPRO_ITEM_TIMEOUT`` watchdog.

``cache_corrupt`` is consumed by :mod:`repro.core.workload`, which
truncates the just-written ``.npz`` so the next disk load exercises the
quarantine path. Every fired fault counts ``fault.<kind>``.

Liveness guarantee: the *final* retry attempt runs under
:func:`suppressed`, so even ``worker_crash:1`` (crash every call) cannot
wedge a run -- injection is a test harness, not a way to lose work.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.core.env import env_float
from repro.telemetry import events

__all__ = [
    "InjectedFault",
    "FaultPlan",
    "active_plan",
    "fire",
    "fault_point",
    "suppressed",
]

_log = telemetry.get_logger("faults")


class InjectedFault(RuntimeError):
    """An artificial failure raised by ``REPRO_FAULT=worker_crash:...``."""


@dataclass
class FaultPlan:
    """Parsed ``REPRO_FAULT`` specification plus per-process budgets."""

    rates: dict[str, float] = field(default_factory=dict)
    budgets: dict[str, int] = field(default_factory=dict)
    seed: int = 0
    _spent: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind:value[,kind:value...]``; bad clauses warn and drop."""
        plan = cls(seed=seed)
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            kind, sep, value = clause.partition(":")
            kind = kind.strip()
            try:
                if not sep:
                    raise ValueError("missing ':'")
                rate = float(value)
                if rate <= 0:
                    raise ValueError("rate/budget must be positive")
            except ValueError as exc:
                _log.warning(
                    "dropping malformed REPRO_FAULT clause %s",
                    telemetry.kv(clause=clause, error=exc),
                )
                continue
            if rate < 1.0:
                plan.rates[kind] = rate
            else:
                plan.budgets[kind] = int(rate)
        return plan

    def empty(self) -> bool:
        return not self.rates and not self.budgets

    def should_fire(self, kind: str, token: str = "", attempt: int = 0) -> bool:
        """Decide (deterministically) whether *kind* fires at this site."""
        rate = self.rates.get(kind)
        if rate is not None:
            blob = f"{self.seed}:{kind}:{token}:{attempt}".encode()
            draw = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
            return draw < rate * 2**64
        budget = self.budgets.get(kind)
        if budget is not None:
            with self._lock:
                spent = self._spent.get(kind, 0)
                if spent < budget:
                    self._spent[kind] = spent + 1
                    return True
        return False


_local = threading.local()
_cached: tuple[tuple[str, str], FaultPlan] | None = None
_cache_lock = threading.Lock()


def active_plan() -> FaultPlan | None:
    """The plan for the current environment, or ``None`` when unset.

    The parse is cached on the raw ``(REPRO_FAULT, REPRO_FAULT_SEED)``
    strings so tests can flip the environment without touching module
    state, while budget bookkeeping survives across calls.
    """
    global _cached
    spec = os.environ.get("REPRO_FAULT", "")
    seed_raw = os.environ.get("REPRO_FAULT_SEED", "0")
    if not spec.strip():
        return None
    with _cache_lock:
        if _cached is not None and _cached[0] == (spec, seed_raw):
            return _cached[1]
        try:
            seed = int(seed_raw)
        except ValueError:
            seed = 0
        plan = FaultPlan.parse(spec, seed=seed)
        _cached = ((spec, seed_raw), plan)
    return plan if not plan.empty() else None


def suppressed():
    """Context manager: disable injection on this thread.

    Wraps final retry attempts so fault injection can never exhaust a
    retry budget into a lost run.
    """

    class _Suppress:
        def __enter__(self):
            _local.depth = getattr(_local, "depth", 0) + 1

        def __exit__(self, *exc):
            _local.depth -= 1
            return False

    return _Suppress()


def _is_suppressed() -> bool:
    return getattr(_local, "depth", 0) > 0


def fire(kind: str, token: str = "", attempt: int = 0) -> bool:
    """True when *kind* should fire here; counts ``fault.<kind>``."""
    plan = active_plan()
    if plan is None or _is_suppressed():
        return False
    if not plan.should_fire(kind, token=token, attempt=attempt):
        return False
    telemetry.count(f"fault.{kind}")
    events.emit("resilience.fault", name=kind, token=token, attempt=attempt)
    _log.warning(
        "injected fault %s", telemetry.kv(kind=kind, token=token, attempt=attempt)
    )
    return True


def fault_point(token: str, attempt: int = 0) -> None:
    """The worker-side injection site: crash, kill, or stall.

    Called by the pool worker wrapper before running the real item, so a
    fired fault costs exactly one item-attempt.
    """
    if fire("worker_kill", token=token, attempt=attempt):
        os._exit(87)
    if fire("worker_crash", token=token, attempt=attempt):
        raise InjectedFault(f"injected worker_crash at {token} attempt {attempt}")
    if fire("timeout", token=token, attempt=attempt):
        time.sleep(env_float("REPRO_FAULT_SLEEP", 0.5, minimum=0.0))
