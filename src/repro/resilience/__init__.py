"""Fault tolerance for the experiment engine.

A multi-hour sweep (``headline_means --exact``, the design-space sweeps)
must survive the failures that show up only at scale: a worker process
OOM-killed mid-figure, a truncated ``.npz`` in ``$REPRO_CACHE_DIR``, one
layer hanging on a pathological input. This package supplies the three
mechanisms the engine threads through its hot paths, plus the harness
that proves they work:

- :mod:`repro.resilience.retry` -- the bounded-retry / backoff / item-
  timeout policy (``REPRO_RETRIES``, ``REPRO_RETRY_BACKOFF``,
  ``REPRO_ITEM_TIMEOUT``) that :func:`repro.core.parallel.parallel_map`
  applies per item, so a dead worker costs only its in-flight items.
- :mod:`repro.resilience.checkpoint` -- the run journal
  (``REPRO_CHECKPOINT_DIR`` / ``repro run --resume <dir>``): every
  finished (scheme, layer, seed) result that enters the result memo is
  also persisted, and a resumed run preloads the journal so only
  unfinished work re-executes.
- :mod:`repro.resilience.faults` -- deterministic, seeded fault
  injection (``REPRO_FAULT=worker_crash:0.1,cache_corrupt:2``) so every
  degradation path is exercised in tests and CI rather than discovered
  in production.
- :mod:`repro.resilience.doctor` -- ``repro doctor``: scan, verify and
  prune the on-disk workload cache and its quarantined entries.

Recovery never changes results: every retried or resumed item recomputes
from its arguments alone, so a faulted run's figures are byte-identical
to a clean serial run (the chaos tests assert exactly that).
"""

from repro.resilience.checkpoint import (
    checkpoint_dir,
    journal_result,
    load_journal,
    preload_journal,
)
from repro.resilience.faults import FaultPlan, InjectedFault, fault_point, fire, suppressed
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "fault_point",
    "fire",
    "suppressed",
    "RetryPolicy",
    "call_with_retry",
    "checkpoint_dir",
    "journal_result",
    "load_journal",
    "preload_journal",
    "resilience_summary",
]


def resilience_summary(counters: dict[str, float]) -> dict[str, float]:
    """The manifest's ``resilience`` section from a counter dump.

    One stable place defines which counters summarise the fault-tolerance
    machinery, so manifests, ``repro stats`` and the CI chaos guard agree
    on the names.
    """
    return {
        "retries": counters.get("resilience.retry", 0),
        "timeouts": counters.get("resilience.timeout", 0),
        "pool_fallbacks": counters.get("pool_fallback", 0),
        "quarantines": counters.get("cache.disk.quarantine", 0),
        "checkpoint_stored": counters.get("checkpoint.store", 0),
        "checkpoint_loaded": counters.get("checkpoint.loaded", 0),
        "faults_injected": sum(
            v for k, v in counters.items() if k.startswith("fault.")
        ),
    }
