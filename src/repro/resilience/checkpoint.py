"""Checkpoint/resume: journal finished results to a run directory.

A crashed multi-hour run should cost only the work that was in flight,
not the figure. When ``REPRO_CHECKPOINT_DIR`` points at a run directory
(the CLI's ``repro run --resume <dir>`` sets it), every finished
(scheme, layer spec, config, seed) result that enters the result memo in
:mod:`repro.core.workload` is also journaled here as one atomically
written pickle -- ``ckpt-<sha>.pkl`` holding ``{"key": key, "value":
result}`` -- and a resumed run preloads the journal back into the memo
before executing anything, so only unfinished work re-runs.

The journal is append-only and content-keyed: re-finishing an already
journaled item is a no-op (the file exists), concurrent workers write
distinct keys through ``tempfile.mkstemp`` + ``os.replace`` so a
half-written entry is never visible under its final name, and an entry
that *still* manages to rot on disk is quarantined to ``.corrupt`` on
load (counted as ``checkpoint.quarantine``) exactly like the workload
cache -- a damaged journal degrades to recomputation, never to a crash
or a wrong figure.

Spawned workers inherit ``REPRO_CHECKPOINT_DIR`` through the
environment, so a fanned-out run journals from every process.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile

from repro import telemetry

__all__ = [
    "checkpoint_dir",
    "entry_path",
    "journal_result",
    "load_journal",
    "preload_journal",
]

_PREFIX = "ckpt-"

_log = telemetry.get_logger("checkpoint")


def checkpoint_dir() -> pathlib.Path | None:
    """The active run directory from ``REPRO_CHECKPOINT_DIR``, if any."""
    path = os.environ.get("REPRO_CHECKPOINT_DIR")
    return pathlib.Path(path) if path else None


def entry_path(base: pathlib.Path, key: tuple) -> pathlib.Path:
    """The journal file for one result key (content-addressed)."""
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
    return base / f"{_PREFIX}{digest}.pkl"


def journal_result(key: tuple, value) -> None:
    """Persist one finished result to the active journal (best-effort).

    No-op when no journal is active or the entry already exists. A full
    or read-only volume costs the persistence, not the run.
    """
    base = checkpoint_dir()
    if base is None:
        return
    path = entry_path(base, key)
    if path.exists():
        return
    try:
        base.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"key": key, "value": value}, fh)
            os.replace(tmp, path)
            telemetry.count("checkpoint.store")
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    except OSError as exc:
        _log.warning(
            "checkpoint store failed %s", telemetry.kv(path=path, error=exc)
        )


def load_journal(base: pathlib.Path) -> list[tuple[tuple, object]]:
    """Every readable (key, value) pair journaled under *base*.

    Corrupt entries (truncated pickle, wrong shape) are renamed to
    ``<name>.corrupt`` and counted -- the run they belong to simply
    recomputes them. Entries come back sorted by filename so preloading
    is deterministic.
    """
    entries: list[tuple[tuple, object]] = []
    for path in sorted(base.glob(f"{_PREFIX}*.pkl")):
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
            key, value = record["key"], record["value"]
            if not isinstance(key, tuple):
                raise ValueError("journal key is not a tuple")
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                ValueError, AttributeError, ImportError, IndexError) as exc:
            telemetry.count("checkpoint.quarantine")
            _log.warning(
                "quarantining corrupt checkpoint entry %s",
                telemetry.kv(path=path, error=exc),
            )
            try:
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            except OSError:
                pass
            continue
        entries.append((key, value))
    return entries


def preload_journal(base: pathlib.Path | None = None) -> int:
    """Load a run directory's journal into the in-memory result memo.

    Returns the number of entries restored (counted as
    ``checkpoint.loaded``); subsequent ``lookup_result`` hits skip the
    simulators for that work. With *base* unset, the active
    ``REPRO_CHECKPOINT_DIR`` is used; no directory (or an empty one)
    restores nothing.
    """
    from repro.core import workload  # late: workload journals through us

    base = base if base is not None else checkpoint_dir()
    if base is None or not base.is_dir():
        return 0
    loaded = 0
    for key, value in load_journal(base):
        workload.store_result(key, value)
        loaded += 1
    if loaded:
        telemetry.count("checkpoint.loaded", loaded)
        _log.info(
            "resumed from journal %s", telemetry.kv(dir=base, entries=loaded)
        )
    return loaded
