"""Bounded retry with exponential backoff and a per-item timeout budget.

One :class:`RetryPolicy` describes how the engine treats a failed or
stalled unit of work; :func:`repro.core.parallel.parallel_map` applies
it per item (in-pool resubmission, then a serial last resort) and the
policy's knobs come from the environment:

- ``REPRO_RETRIES`` -- extra attempts after the first (default 2; 0
  restores fail-fast).
- ``REPRO_RETRY_BACKOFF`` -- base sleep in seconds before attempt *k*,
  growing as ``backoff * 2**(k-1)`` (default 0.05; 0 disables sleeping,
  which is what the tests use).
- ``REPRO_ITEM_TIMEOUT`` -- watchdog seconds the parent waits on one
  in-flight item before recomputing it locally (default 0 = disabled).
  The timer starts when the parent begins waiting on the item, so it
  bounds *observed* staleness; a queued item never times out while an
  earlier one is still being waited on.

Retries are safe because every unit of work is a pure function of its
arguments: recomputing an item -- in the pool or in the parent -- yields
the same value, so retried runs stay byte-identical to clean ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import telemetry
from repro.core.env import env_float, env_int
from repro.resilience import faults
from repro.telemetry import events

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")
R = TypeVar("R")

_log = telemetry.get_logger("retry")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry one item, and how long to wait between."""

    retries: int = 2
    backoff: float = 0.05
    item_timeout: float = 0.0

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        return cls(
            retries=env_int("REPRO_RETRIES", 2, minimum=0),
            backoff=env_float("REPRO_RETRY_BACKOFF", 0.05, minimum=0.0),
            item_timeout=env_float("REPRO_ITEM_TIMEOUT", 0.0, minimum=0.0),
        )

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before retry *attempt* (1-based)."""
        if self.backoff <= 0.0 or attempt <= 0:
            return 0.0
        return self.backoff * (2.0 ** (attempt - 1))

    def sleep(self, attempt: int) -> None:
        delay = self.backoff_for(attempt)
        if delay > 0.0:
            time.sleep(delay)


def call_with_retry(
    fn: Callable[[T], R],
    item: T,
    policy: RetryPolicy,
    token: str = "",
    first_attempt: int = 0,
) -> R:
    """Run ``fn(item)`` under *policy*, retrying failures with backoff.

    *first_attempt* credits attempts already consumed elsewhere (the
    in-pool resubmissions), so pool and serial attempts draw from one
    budget. The final attempt runs with fault injection suppressed --
    injected faults may cost work, never a run -- and a genuine error
    that survives every attempt propagates with its original traceback.
    """
    attempt = first_attempt
    while True:
        final = attempt >= policy.retries
        try:
            if final:
                with faults.suppressed():
                    return fn(item)
            return fn(item)
        except Exception as exc:
            if final:
                raise
            attempt += 1
            telemetry.count("resilience.retry")
            events.emit(
                "resilience.retry", token=token, attempt=attempt, error=str(exc)
            )
            _log.warning(
                "retrying failed item %s",
                telemetry.kv(
                    token=token, attempt=attempt, of=policy.retries, error=exc
                ),
            )
            policy.sleep(attempt)
