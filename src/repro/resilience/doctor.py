"""``repro doctor``: scan, verify and prune the on-disk stores.

The workload cache (``$REPRO_CACHE_DIR``) and checkpoint journals
survive crashes by design -- which means they also accumulate the debris
of crashes: truncated ``.npz`` archives, orphaned ``.tmp`` files from
interrupted atomic writes, ``.part`` event side files and ``.claim``
single-flight leases whose writers were killed, and ``.corrupt``
quarantine markers left by earlier runs. The doctor walks a directory,
verifies every entry the
same way the runtime loaders do (every array member is actually
decompressed, not just the zip directory), quarantines entries that fail
verification, and -- with ``--prune`` -- deletes quarantined and orphaned
files.

Verification is read-only apart from quarantine renames; pruning never
touches healthy entries, so ``repro doctor --prune`` is always safe to
run between experiments.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import time
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.telemetry import events

__all__ = ["DoctorReport", "scan_store", "render_report"]

_log = telemetry.get_logger("doctor")


@dataclass
class DoctorReport:
    """Outcome of one ``repro doctor`` pass."""

    directory: str
    healthy: int = 0
    healthy_bytes: int = 0
    quarantined: list[str] = field(default_factory=list)
    pruned: list[str] = field(default_factory=list)
    orphans: list[str] = field(default_factory=list)
    workers_live: int = 0
    workers_suspect: int = 0
    workers_dead: int = 0
    workers_exited: int = 0

    @property
    def ok(self) -> bool:
        return not self.quarantined


def _verify_npz(path: pathlib.Path) -> None:
    """Load every member of a cache ``.npz``; raises on any corruption."""
    with np.load(path, allow_pickle=False) as z:
        if "key" not in z.files:
            raise ValueError("missing key member")
        for name in z.files:
            z[name]  # decompress + CRC-check the member, not just the index


def _verify_ckpt(path: pathlib.Path) -> None:
    """Load one checkpoint journal entry; raises on any corruption."""
    with open(path, "rb") as fh:
        record = pickle.load(fh)
    if not isinstance(record, dict) or "key" not in record or "value" not in record:
        raise ValueError("not a checkpoint record")


def _quarantine(path: pathlib.Path, report: DoctorReport, error: Exception) -> None:
    telemetry.count("cache.disk.quarantine")
    events.emit("doctor.quarantine", path=str(path), error=str(error))
    _log.warning(
        "quarantining corrupt entry %s", telemetry.kv(path=path, error=error)
    )
    target = path.with_suffix(path.suffix + ".corrupt")
    try:
        os.replace(path, target)
        report.quarantined.append(str(target))
    except OSError:
        report.quarantined.append(str(path))


def _scan_health(
    base: pathlib.Path, report: DoctorReport, stale_age: float
) -> None:
    """Tally worker heartbeats under ``health/`` and flag reapable ones.

    Live and suspect heartbeats belong to workers that may still be
    running -- never touched. A dead worker's heartbeat (stale past
    twice the claim TTL) and a clean exit's final snapshot older than
    one TTL are debris: they become orphans so ``--prune`` clears the
    store for the next sweep, age-gated exactly like claim leases.
    """
    from repro.dist import health as dist_health

    if not (base / dist_health.HEALTH_DIR).is_dir():
        return
    for snapshot in dist_health.read_health(base):
        state = dist_health.classify(snapshot, ttl=stale_age)
        if state == dist_health.LIVE:
            report.workers_live += 1
        elif state == dist_health.SUSPECT:
            report.workers_suspect += 1
        elif state == dist_health.DEAD:
            report.workers_dead += 1
            if snapshot["age_seconds"] >= stale_age:
                report.orphans.append(snapshot["path"])
        else:  # exited cleanly; keep briefly for post-mortems, then reap
            report.workers_exited += 1
            if snapshot["age_seconds"] >= stale_age:
                report.orphans.append(snapshot["path"])


def scan_store(directory: str | os.PathLike, prune: bool = False) -> DoctorReport:
    """Verify every cache/journal entry under *directory*.

    Corrupt entries are renamed to ``.corrupt`` (counted as
    ``cache.disk.quarantine``); with *prune*, quarantined entries and
    orphaned files are deleted. ``.tmp`` and ``.corrupt`` files are
    orphans at any age (nothing re-opens them once the atomic rename
    they fed has happened or failed); ``.part`` event files and
    ``.claim`` leases are orphans only once older than
    ``REPRO_CLAIM_TTL``, because a *fresh* one belongs to a live worker
    that the doctor must not sabotage.
    """
    from repro.dist import store as dist_store

    base = pathlib.Path(directory)
    report = DoctorReport(directory=str(base))
    if not base.is_dir():
        return report
    stale_age = dist_store.claim_ttl()
    with telemetry.span("doctor", dir=str(base)):
        for path in sorted(base.iterdir()):
            if path.suffix == ".tmp":
                report.orphans.append(str(path))
                continue
            if path.suffix == ".corrupt":
                report.orphans.append(str(path))
                continue
            if path.suffix in (".part", dist_store.CLAIM_SUFFIX):
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue
                if age >= stale_age:
                    report.orphans.append(str(path))
                continue
            try:
                if path.match("workload-*.npz"):
                    _verify_npz(path)
                elif path.match("ckpt-*.pkl"):
                    _verify_ckpt(path)
                else:
                    continue
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile, pickle.UnpicklingError) as exc:
                _quarantine(path, report, exc)
                continue
            report.healthy += 1
            report.healthy_bytes += path.stat().st_size
        _scan_health(base, report, stale_age)
        if prune:
            for name in report.orphans + report.quarantined:
                try:
                    os.unlink(name)
                    report.pruned.append(name)
                    telemetry.count("cache.disk.prune")
                    events.emit("doctor.prune", path=str(name))
                except OSError:
                    pass
        events.emit(
            "doctor.report",
            dir=str(base),
            healthy=report.healthy,
            quarantined=len(report.quarantined),
            pruned=len(report.pruned),
            orphans=len(report.orphans),
            workers_live=report.workers_live,
            workers_dead=report.workers_dead,
            ok=report.ok,
        )
    return report


def render_report(report: DoctorReport, prune: bool = False) -> str:
    """Human-readable summary for the CLI."""
    lines = [
        f"doctor: {report.directory}",
        f"  healthy entries    {report.healthy}"
        f"  ({report.healthy_bytes / 1e6:.1f} MB)",
        f"  quarantined        {len(report.quarantined)}",
        f"  orphaned/.corrupt  {len(report.orphans)}",
    ]
    if (report.workers_live or report.workers_suspect
            or report.workers_dead or report.workers_exited):
        lines.append(
            f"  workers            live {report.workers_live}"
            f"  suspect {report.workers_suspect}"
            f"  dead {report.workers_dead}"
            f"  exited {report.workers_exited}"
        )
    for name in report.quarantined:
        lines.append(f"    quarantined {name}")
    if prune:
        lines.append(f"  pruned             {len(report.pruned)}")
    elif report.orphans or report.quarantined:
        lines.append("  (re-run with --prune to delete quarantined/orphaned files)")
    verdict = "clean" if report.ok else "corruption found"
    lines.append(f"  verdict            {verdict}")
    return "\n".join(lines)
