"""Distributed sweep execution over a shared content-addressed store.

``repro.dist`` scales a sweep past one host's ``REPRO_JOBS`` pool by
sharding (network, layer, scheme, seed) work units across OS processes
or hosts that share nothing but a result-store directory:

- :mod:`repro.dist.store` -- multi-writer safety for the on-disk
  stores: single-flight claim leases with stale-claim stealing, wait
  protocol, orphan reaping.
- :mod:`repro.dist.shard` -- deterministic content-hash shard planner,
  the published ``sweep.json`` plan, ``REPRO_SHARD`` identity.
- :mod:`repro.dist.worker` -- the execution loop: run a shard, steal
  foreign units when done, long-poll as a standing worker, reconcile
  per-shard manifests to sweep totals.
- :mod:`repro.dist.health` -- store-resident heartbeats: every worker
  keeps an atomic ``health/<worker>.json`` snapshot fresh; staleness
  against the claim TTL classifies workers live/suspect/dead/exited.
- :mod:`repro.dist.fleet` -- the merged fleet view behind ``repro top``
  and ``repro inspect``: per-shard progress, worker liveness, the
  exactly-once audit, stragglers and anomalies from every worker's
  artifacts in one store.

Coordination log is the PR 3 checkpoint journal (one file per published
result, never rewritten), so resume-after-SIGKILL costs zero
recomputation of anything any worker has published.
"""

from repro.dist.shard import (  # noqa: F401
    SweepPlan,
    WorkUnit,
    parse_shard,
    plan_shards,
    shard_identity,
    shard_of,
)
from repro.dist.store import (  # noqa: F401
    Claim,
    claim_path,
    reap_orphans,
    try_claim,
    wait_for_publication,
)
from repro.dist.health import (  # noqa: F401
    HealthBeacon,
    classify,
    read_health,
)
