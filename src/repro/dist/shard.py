"""Shard planning: deterministic partition of sweep work across workers.

A distributed sweep is a set of **work units** -- one ``(network, layer,
scheme, seed)`` simulation each -- executed by any number of OS
processes on any number of hosts against one shared result store. The
planner here is deliberately stateless and deterministic:

- :func:`shard_of` assigns a unit to a shard by hashing its *content*
  (SHA-256 of the unit token), never its position in a list, so every
  worker -- on any host, with no communication -- derives the identical
  partition from the identical plan.
- :class:`SweepPlan` is the serialised grid (``sweep.json`` in the
  store directory): the full unit list plus the execution knobs every
  worker must agree on (fidelity, sampling). :func:`publish_plan` is
  claim-guarded and atomic, so concurrent workers racing to start the
  same sweep agree on one plan; a worker that arrives late simply loads
  it. Divergent plans for one store are an error, never a silent merge.
- ``REPRO_SHARD=I/N`` carries shard identity through the environment so
  spawned worker pools, telemetry manifests and the event stream all
  tag their records; :func:`shard_identity` is the one parser.

Work stealing builds on this determinism: a worker that finishes its
own shard walks the *other* shards' unfinished units (rotated so
stealers spread out) and claims them through the same single-flight
leases the store uses -- see :mod:`repro.dist.worker`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass

from repro import telemetry
from repro.dist import store as dist_store

__all__ = [
    "SWEEP_PLAN_SCHEMA",
    "WorkUnit",
    "SweepPlan",
    "parse_shard",
    "shard_identity",
    "shard_of",
    "plan_shards",
    "plan_path",
    "publish_plan",
    "load_plan",
]

SWEEP_PLAN_SCHEMA = "repro-sweep-plan/1"

#: Plan file name inside a shared store directory.
_PLAN_NAME = "sweep.json"

_log = telemetry.get_logger("dist.shard")


@dataclass(frozen=True)
class WorkUnit:
    """One shardable simulation: a scheme on a layer at a seed."""

    network: str
    layer: str
    scheme: str
    seed: int

    @property
    def token(self) -> str:
        """Stable content token (the hash and claim identity)."""
        return f"{self.network}:{self.layer}:{self.scheme}:{self.seed}"

    def as_list(self) -> list:
        return [self.network, self.layer, self.scheme, self.seed]

    @classmethod
    def from_list(cls, raw) -> "WorkUnit":
        network, layer, scheme, seed = raw
        return cls(
            network=str(network), layer=str(layer),
            scheme=str(scheme), seed=int(seed),
        )


def parse_shard(raw: str) -> tuple[int, int]:
    """Parse ``"I/N"`` into ``(index, count)`` with loud validation."""
    try:
        index_text, count_text = raw.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/2), got {raw!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def shard_identity() -> dict | None:
    """The manifest's ``shard`` section from ``REPRO_SHARD`` (None unset).

    Invalid values are reported as unparsed rather than crashing a
    manifest write at the end of a long run.
    """
    raw = os.environ.get("REPRO_SHARD")
    if not raw:
        return None
    identity: dict = {"shard": raw, "worker": dist_store.worker_identity()}
    try:
        index, count = parse_shard(raw)
    except ValueError:
        return identity
    identity["index"] = index
    identity["count"] = count
    return identity


def shard_of(unit: WorkUnit | str, n_shards: int) -> int:
    """The owning shard of one unit: a pure function of its content.

    Content hashing (not ``hash()``, which is salted per process) makes
    the partition identical on every host and across restarts, which is
    what lets workers plan without talking to each other.
    """
    token = unit.token if isinstance(unit, WorkUnit) else str(unit)
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") % max(1, int(n_shards))


def plan_shards(
    units: tuple[WorkUnit, ...] | list[WorkUnit], n_shards: int
) -> dict[int, list[WorkUnit]]:
    """Partition *units* into ``{shard index: [units]}`` (all keys present)."""
    shards: dict[int, list[WorkUnit]] = {i: [] for i in range(n_shards)}
    for unit in units:
        shards[shard_of(unit, n_shards)].append(unit)
    return shards


@dataclass(frozen=True)
class SweepPlan:
    """The serialisable description of one distributed sweep."""

    units: tuple[WorkUnit, ...]
    fidelity: str | None = None
    position_sample: int | None = 200
    batch: int = 1

    def as_dict(self) -> dict:
        return {
            "schema": SWEEP_PLAN_SCHEMA,
            "fidelity": self.fidelity,
            "position_sample": self.position_sample,
            "batch": self.batch,
            "units": [unit.as_list() for unit in self.units],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepPlan":
        if raw.get("schema") != SWEEP_PLAN_SCHEMA:
            raise ValueError(
                f"not a {SWEEP_PLAN_SCHEMA} plan (schema={raw.get('schema')!r})"
            )
        sample = raw.get("position_sample")
        return cls(
            units=tuple(WorkUnit.from_list(u) for u in raw.get("units", ())),
            fidelity=raw.get("fidelity") or None,
            position_sample=int(sample) if sample is not None else None,
            batch=int(raw.get("batch", 1)),
        )

    def shard_units(self, shard: tuple[int, int] | None) -> tuple[WorkUnit, ...]:
        """This shard's own units (all of them when *shard* is None)."""
        if shard is None:
            return self.units
        index, count = shard
        return tuple(u for u in self.units if shard_of(u, count) == index)

    def foreign_units(self, shard: tuple[int, int] | None) -> tuple[WorkUnit, ...]:
        """Other shards' units, rotated to start just past this shard.

        The rotation spreads stealers across the remaining shards
        instead of piling every finished worker onto shard 0's tail.
        """
        if shard is None:
            return ()
        index, count = shard
        foreign = [u for u in self.units if shard_of(u, count) != index]
        foreign.sort(key=lambda u: ((shard_of(u, count) - index) % count, u.token))
        return tuple(foreign)


def plan_path(store_dir: str | os.PathLike) -> pathlib.Path:
    return pathlib.Path(store_dir) / _PLAN_NAME


def publish_plan(store_dir: str | os.PathLike, plan: SweepPlan) -> SweepPlan:
    """Publish *plan* to the store (or adopt the already-published one).

    The write is claim-guarded and atomic so racing workers settle on
    exactly one plan file. If a plan already exists it must describe the
    same unit set -- two different sweeps aimed at one store directory
    is a configuration error worth failing loudly on, because their
    shard partitions would silently interleave.
    """
    path = plan_path(store_dir)
    existing = load_plan(store_dir, missing_ok=True)
    if existing is None:
        claim = dist_store.try_claim(path)
        if claim is None:
            _claim, published = dist_store.wait_for_publication(path)
            if _claim is not None:
                claim = _claim
            elif published:
                existing = load_plan(store_dir, missing_ok=True)
        if existing is None and claim is not None:
            try:
                if not path.exists():
                    path.parent.mkdir(parents=True, exist_ok=True)
                    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                    try:
                        with os.fdopen(fd, "w", encoding="utf-8") as fh:
                            json.dump(plan.as_dict(), fh, indent=2, sort_keys=True)
                        os.replace(tmp, path)
                        telemetry.count("dist.plan.published")
                        _log.info(
                            "published sweep plan %s",
                            telemetry.kv(path=path, units=len(plan.units)),
                        )
                    except BaseException:
                        if os.path.exists(tmp):
                            os.unlink(tmp)
                        raise
                else:
                    existing = load_plan(store_dir, missing_ok=True)
            finally:
                claim.release()
    if existing is not None:
        if set(u.token for u in existing.units) != set(u.token for u in plan.units):
            raise ValueError(
                f"{path}: store already holds a different sweep plan "
                f"({len(existing.units)} units vs {len(plan.units)} requested); "
                "use a fresh store directory per sweep"
            )
        return existing
    return plan


def load_plan(
    store_dir: str | os.PathLike, missing_ok: bool = False
) -> SweepPlan | None:
    """Load the published plan for a store (None when absent and allowed)."""
    path = plan_path(store_dir)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        if missing_ok:
            return None
        raise FileNotFoundError(
            f"{path}: no sweep plan published yet "
            "(start a `repro sweep --store` coordinator first)"
        ) from None
    except (OSError, ValueError) as exc:
        raise ValueError(f"{path}: unreadable sweep plan: {exc}") from exc
    return SweepPlan.from_dict(raw)
