"""Multi-writer safety for the on-disk stores: claims, waiting, reaping.

The workload cache (``$REPRO_CACHE_DIR``) and the checkpoint journals
already publish atomically -- ``tempfile.mkstemp`` + ``os.replace`` means
a reader never sees a half-written entry. What atomic publish alone does
*not* give a fleet of workers sharing one store is single-flight: two
processes that miss on the same key both pay the compute and race to
publish. This module adds the missing coordination with **claim files**:

- :func:`try_claim` creates ``<entry>.claim`` with ``O_CREAT|O_EXCL`` --
  the one atomic-on-every-filesystem primitive -- so exactly one process
  owns the right to compute a missing entry. The claim body records the
  owner (host, pid, wall time) for post-mortems.
- A claim is a *lease*, not a lock: a SIGKILL'd owner cannot release,
  so claims expire. :func:`try_claim` steals a claim whose mtime is
  older than ``REPRO_CLAIM_TTL`` seconds (owners refresh long-running
  claims with :meth:`Claim.refresh`), which is what makes the store
  crash-consistent -- worker loss costs at most one lease period.
- Losers of the claim race :func:`wait_for_publication` -- poll (at
  ``REPRO_CLAIM_POLL`` seconds) until the entry appears, the claim is
  released without a publish (the owner failed; compute it yourself),
  or the claim goes stale and is stolen.
- :func:`reap_orphans` deletes debris no live writer can still own:
  ``.tmp`` files from interrupted atomic publishes, ``.part`` event
  side files and ``.claim`` leases older than an age threshold.

Correctness never depends on claims: publish stays atomic and
content-addressed, so the worst outcome of every race here is duplicated
work, never a corrupt or wrong entry. The concurrent-writer stress test
(``tests/test_dist.py``) asserts the good case -- exactly-once compute
per key -- under real process contention.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
from dataclasses import dataclass

from repro import telemetry
from repro.core.env import env_choice, env_float

__all__ = [
    "CLAIM_SUFFIX",
    "Claim",
    "claim_path",
    "claim_ttl",
    "claim_poll",
    "single_flight_enabled",
    "try_claim",
    "wait_for_publication",
    "reap_orphans",
]

#: Suffix appended to an entry's final path to name its claim lease.
CLAIM_SUFFIX = ".claim"

#: Suffixes :func:`reap_orphans` considers crash debris.
_ORPHAN_SUFFIXES = (".tmp", ".part", CLAIM_SUFFIX)

_log = telemetry.get_logger("dist.store")


def claim_ttl() -> float:
    """Lease seconds before an unrefreshed claim is stealable."""
    return env_float("REPRO_CLAIM_TTL", 300.0, minimum=0.1)


def claim_poll() -> float:
    """Seconds between polls while waiting on another process's claim."""
    return env_float("REPRO_CLAIM_POLL", 0.05, minimum=0.001)


def single_flight_enabled() -> bool:
    """Whether cross-process single-flight claims are active (default on)."""
    return env_choice("REPRO_SINGLE_FLIGHT", "on", ("on", "off")) == "on"


def claim_path(target: str | os.PathLike) -> pathlib.Path:
    """The claim-lease path guarding one store entry."""
    target = pathlib.Path(target)
    return target.with_name(target.name + CLAIM_SUFFIX)


def worker_identity() -> str:
    """This process's stable worker id (``REPRO_WORKER_ID`` or host-pid)."""
    explicit = os.environ.get("REPRO_WORKER_ID")
    if explicit:
        return explicit
    try:
        host = socket.gethostname()
    except OSError:
        host = "unknown"
    return f"{host}-{os.getpid()}"


@dataclass
class Claim:
    """An acquired single-flight lease on one store entry."""

    target: pathlib.Path
    path: pathlib.Path
    owner: str

    def refresh(self) -> None:
        """Extend the lease (touch the claim file's mtime).

        Owners of long computations call this between work items so a
        healthy worker is never mistaken for a dead one.
        """
        try:
            os.utime(self.path)
        except OSError:
            pass  # lost the file (stolen): the publish race stays safe

    def release(self) -> None:
        """Drop the lease (best-effort; a stolen claim is already gone)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        telemetry.count("store.claim.release")


def _claim_age(path: pathlib.Path) -> float | None:
    """Seconds since the claim was created/refreshed (None if gone)."""
    try:
        return max(0.0, time.time() - path.stat().st_mtime)
    except OSError:
        return None


def try_claim(
    target: str | os.PathLike, ttl: float | None = None
) -> Claim | None:
    """Attempt to become the single flight for *target*.

    Returns a :class:`Claim` on success. ``None`` means another process
    holds a *fresh* lease -- the caller should
    :func:`wait_for_publication` instead of computing. A stale lease
    (older than *ttl*, default ``REPRO_CLAIM_TTL``) is stolen: the dead
    owner's claim file is removed and acquisition retried, counted as
    ``store.claim.steal``.
    """
    ttl = claim_ttl() if ttl is None else ttl
    target = pathlib.Path(target)
    lease = claim_path(target)
    owner = worker_identity()
    body = json.dumps(
        {"owner": owner, "pid": os.getpid(), "ts": time.time(),
         "target": target.name}
    )
    while True:
        try:
            lease.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            age = _claim_age(lease)
            if age is None:
                continue  # released between EXCL and stat: retry
            if age <= ttl:
                return None  # fresh lease held elsewhere
            # Stale lease: the owner died (or wedged) without releasing.
            # Unlink and retry; if two stealers race, O_EXCL picks one.
            telemetry.count("store.claim.steal")
            _log.warning(
                "stealing stale claim %s",
                telemetry.kv(path=lease, age_seconds=round(age, 1), ttl=ttl),
            )
            try:
                os.unlink(lease)
            except OSError:
                pass
            continue
        except OSError as exc:
            # An unwritable store degrades to claimless compute: atomic
            # publish keeps it correct, just not single-flight.
            _log.debug(
                "claim acquisition failed %s", telemetry.kv(path=lease, error=exc)
            )
            return Claim(target=target, path=lease, owner=owner)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
        except OSError:
            pass
        telemetry.count("store.claim.acquire")
        return Claim(target=target, path=lease, owner=owner)


def wait_for_publication(
    target: str | os.PathLike,
    ttl: float | None = None,
    poll: float | None = None,
    max_wait: float | None = None,
) -> tuple[Claim | None, bool]:
    """Wait out another process's claim on *target*.

    Returns ``(claim, published)``:

    - ``(None, True)`` -- the entry was published; load it.
    - ``(Claim, False)`` -- the lease lapsed (released without a publish,
      or went stale and was stolen); the caller now owns the flight and
      must compute.
    - ``(None, False)`` -- *max_wait* expired with the lease still fresh
      (a healthy-but-slow owner). Compute without a claim: atomic
      publish keeps duplicated work safe.

    The default *max_wait* is twice the lease TTL -- long enough that a
    refreshing owner normally finishes, short enough that a pathological
    refresher cannot wedge the caller forever.
    """
    ttl = claim_ttl() if ttl is None else ttl
    poll = claim_poll() if poll is None else poll
    max_wait = 2.0 * max(ttl, 1.0) if max_wait is None else max_wait
    target = pathlib.Path(target)
    telemetry.count("store.claim.wait")
    deadline = time.monotonic() + max_wait
    while True:
        if target.exists():
            return None, True
        claim = try_claim(target, ttl=ttl)
        if claim is not None:
            # Won the lease -- but the previous owner may have published
            # between our existence check and the steal.
            if target.exists():
                claim.release()
                return None, True
            return claim, False
        if time.monotonic() >= deadline:
            telemetry.count("store.claim.wait_timeout")
            return None, False
        time.sleep(poll)


def reap_orphans(
    directory: str | os.PathLike, age: float | None = None
) -> list[str]:
    """Delete crash debris under *directory* older than *age* seconds.

    Removes ``.tmp`` files (interrupted atomic publishes), ``.part``
    event side files (a worker killed mid-attempt) and ``.claim`` leases
    (dead owners) whose mtime is at least *age* seconds old -- default
    ``REPRO_CLAIM_TTL``, so a live writer's files are never touched.
    Returns the deleted paths (counted as ``store.reap``).
    """
    age = claim_ttl() if age is None else age
    base = pathlib.Path(directory)
    if not base.is_dir():
        return []
    reaped: list[str] = []
    now = time.time()
    for path in sorted(base.iterdir()):
        if path.suffix not in _ORPHAN_SUFFIXES:
            continue
        try:
            if now - path.stat().st_mtime < age:
                continue
            os.unlink(path)
        except OSError:
            continue
        reaped.append(str(path))
        telemetry.count("store.reap")
    if reaped:
        _log.info(
            "reaped orphaned store files %s",
            telemetry.kv(dir=base, files=len(reaped)),
        )
    return reaped
