"""Store-resident worker health heartbeats (``health/<worker>.json``).

A fleet has no coordinator, so liveness must be inferable from the
store alone. Every worker runs a :class:`HealthBeacon` -- the same
daemon-thread pattern as :class:`repro.telemetry.metrics.MetricsSnapshotter`
-- that periodically rewrites an atomic snapshot of what it is doing:
pid, host, shard, the unit currently executing, units finished, cache
hits, retries, the last event sequence number it emitted, and its
monotonic uptime.

Liveness is then a pure function of snapshot age against the claim TTL
(the same staleness clock the claim-stealing protocol already trusts):

- ``live``     -- refreshed within one TTL,
- ``suspect``  -- older than one TTL but younger than two (a stalled
  unit, a paused VM, or a death not yet certain),
- ``dead``     -- older than two TTLs with no final snapshot: the
  worker was killed without cleanup (``repro inspect`` names these),
- ``exited``   -- the final snapshot a clean shutdown always writes,
  regardless of age (finished is not dead).

``repro doctor`` reaps dead/exited heartbeats past the TTL age gate;
fresh ones belong to live workers and are never touched.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import tempfile
import threading
import time
from contextlib import contextmanager

from repro import telemetry
from repro.dist import store as dist_store
from repro.telemetry import events

__all__ = [
    "HEALTH_SCHEMA",
    "HEALTH_DIR",
    "LIVE",
    "SUSPECT",
    "DEAD",
    "EXITED",
    "health_dir",
    "health_path",
    "health_interval",
    "write_health_snapshot",
    "read_health",
    "classify",
    "HealthBeacon",
    "beacon",
]

HEALTH_SCHEMA = "repro-health/1"

#: Store subdirectory holding one heartbeat file per worker.
HEALTH_DIR = "health"

#: Liveness states (see module docstring for the semantics).
LIVE, SUSPECT, DEAD, EXITED = "live", "suspect", "dead", "exited"

#: A heartbeat older than this many claim TTLs with no final snapshot
#: is a dead worker (one TTL of slack beyond "suspect" absorbs a unit
#: that simply ran long).
DEAD_AFTER_TTLS = 2.0


def health_dir(store_dir: str | os.PathLike) -> pathlib.Path:
    return pathlib.Path(store_dir) / HEALTH_DIR


def health_path(
    store_dir: str | os.PathLike, worker: str | None = None
) -> pathlib.Path:
    worker = worker or dist_store.worker_identity()
    return health_dir(store_dir) / f"{worker}.json"


def health_interval() -> float:
    """Seconds between heartbeat rewrites (``REPRO_HEALTH_INTERVAL``).

    Defaults to a third of the claim TTL (clamped to [0.2s, 5s]) so a
    worker always refreshes well inside the staleness window that would
    mark it suspect.
    """
    from repro.core.env import env_float

    override = env_float("REPRO_HEALTH_INTERVAL", 0.0, minimum=0.0)
    if override > 0.0:
        return override
    return max(0.2, min(5.0, dist_store.claim_ttl() / 3.0))


def write_health_snapshot(
    store_dir: str | os.PathLike, snapshot: dict
) -> pathlib.Path:
    """Atomically publish one heartbeat (mkstemp + rename, like the rest)."""
    path = health_path(store_dir, snapshot.get("worker"))
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def read_health(store_dir: str | os.PathLike) -> list[dict]:
    """Every readable heartbeat in the store, with its file age injected.

    Age comes from the snapshot file's mtime on the store's filesystem
    -- the same clock claim staleness uses -- not from the worker's
    wall timestamp, so cross-host clock skew cannot fake liveness.
    """
    base = health_dir(store_dir)
    snapshots: list[dict] = []
    if not base.is_dir():
        return snapshots
    now = time.time()
    for path in sorted(base.glob("*.json")):
        try:
            raw = json.loads(path.read_text())
            mtime = path.stat().st_mtime
        except (OSError, ValueError):
            continue
        if not isinstance(raw, dict) or raw.get("schema") != HEALTH_SCHEMA:
            continue
        raw["age_seconds"] = max(0.0, now - mtime)
        raw["path"] = str(path)
        snapshots.append(raw)
    return snapshots


def classify(snapshot: dict, ttl: float | None = None) -> str:
    """Liveness verdict for one heartbeat (see module docstring)."""
    if snapshot.get("final"):
        return EXITED
    ttl = dist_store.claim_ttl() if ttl is None else float(ttl)
    age = float(snapshot.get("age_seconds", 0.0))
    if age < ttl:
        return LIVE
    if age < DEAD_AFTER_TTLS * ttl:
        return SUSPECT
    return DEAD


class HealthBeacon:
    """Daemon thread keeping this worker's heartbeat fresh in the store.

    ``start()`` writes an immediate snapshot (so even a worker killed
    inside its first unit leaves evidence) and spawns the refresh
    thread; :meth:`update` folds in per-unit state and opportunistically
    rewrites when a refresh is due; ``stop()`` writes the final snapshot
    (``final: true``) that distinguishes a clean exit from a death.
    """

    def __init__(
        self,
        store_dir: str | os.PathLike,
        shard: str | None = None,
        interval: float | None = None,
    ) -> None:
        self.store_dir = pathlib.Path(store_dir)
        self.worker = dist_store.worker_identity()
        self.interval = health_interval() if interval is None else max(
            0.05, float(interval)
        )
        self._shard = shard
        self._state: dict = {"current_unit": None, "units_done": 0}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self._last_write = float("-inf")
        try:
            self._host = socket.gethostname()
        except OSError:
            self._host = "unknown"

    def _snapshot(self, final: bool = False) -> dict:
        counters = telemetry.get_recorder().counters()
        with self._lock:
            state = dict(self._state)
        return {
            "schema": HEALTH_SCHEMA,
            "worker": self.worker,
            "pid": os.getpid(),
            "host": self._host,
            "shard": state.get("shard", self._shard),
            "current_unit": state.get("current_unit"),
            "units_done": state.get("units_done", 0),
            "cache_hits": counters.get("cache.workload.hit", 0),
            "cache_misses": counters.get("cache.workload.miss", 0),
            "retries": counters.get("resilience.retry", 0),
            "last_event_seq": events.current_seq(),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "started_unix": self._started_unix,
            "ts": time.time(),
            "interval": self.interval,
            "final": final,
        }

    def _write(self, final: bool = False) -> None:
        try:
            write_health_snapshot(self.store_dir, self._snapshot(final=final))
            self._last_write = time.monotonic()
        except OSError:
            pass  # heartbeats are best-effort; never cost the run

    def update(self, **state) -> None:
        """Fold per-unit state in; rewrite the snapshot if one is due."""
        with self._lock:
            self._state.update(state)
        if time.monotonic() - self._last_write >= self.interval:
            self._write()

    def start(self) -> "HealthBeacon":
        self._write()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-health", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._write()

    def stop(self) -> None:
        """Stop refreshing and publish the final (clean-exit) snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._write(final=True)


#: The process's active beacon (one per worker; nested run_shard calls
#: under run_worker share the outer beacon instead of competing).
_active: HealthBeacon | None = None


@contextmanager
def beacon(store_dir: str | os.PathLike, shard: str | None = None):
    """Scope a process-wide beacon to one run (reentrant)."""
    global _active
    if _active is not None:
        if shard is not None:
            _active.update(shard=shard)
        yield _active
        return
    _active = HealthBeacon(store_dir, shard=shard).start()
    try:
        yield _active
    finally:
        active, _active = _active, None
        active.stop()
