"""The distributed execution loop: run a shard, steal, long-poll, reconcile.

A worker process is handed a shared store directory. The published
``sweep.json`` plan (:mod:`repro.dist.shard`) tells it every work unit in
the sweep; ``REPRO_SHARD=I/N`` (or the ``shard=`` argument) tells it
which slice it owns. Execution is three nested guarantees:

1. **The checkpoint journal is the coordination log.** A unit is *done*
   exactly when its journal entry (``ckpt-<sha>.pkl`` under the store
   directory) exists. Entries are written atomically by
   :func:`repro.resilience.checkpoint.journal_result` and never
   rewritten, so "does the entry exist" is a crash-consistent,
   cross-host predicate -- and a restarted worker resumes by simply
   skipping every published unit.
2. **Claims make compute single-flight.** Before simulating, a worker
   claims the unit's entry path (:func:`repro.dist.store.try_claim`).
   Losing the race defers the unit; a later pass waits the claim out
   (publication -> skip; lapse/steal -> compute). A SIGKILL'd owner's
   claim goes stale after ``REPRO_CLAIM_TTL`` and is stolen.
3. **Work stealing keeps finished workers busy.** After its own shard, a
   worker walks the other shards' unpublished units (rotated so stealers
   spread out) under the same claim protocol -- a dead or slow peer's
   units get finished by whoever is alive, with no coordinator.

Every worker writes a per-shard manifest (``manifests/`` in the store)
whose counters :func:`reconcile` sums against the journal, proving the
exactly-once accounting that ``benchmarks/check_shard.py`` gates in CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from contextlib import contextmanager

from repro import telemetry
from repro.dist import health
from repro.dist import shard as dist_shard
from repro.dist import store as dist_store
from repro.dist.shard import SweepPlan, WorkUnit
from repro.resilience import checkpoint
from repro.telemetry import events
from repro.telemetry.progress import ProgressRenderer

__all__ = [
    "SHARD_MANIFEST_SCHEMA",
    "unit_key",
    "unit_entry",
    "execute_unit",
    "run_shard",
    "run_worker",
    "write_shard_manifest",
    "load_shard_manifests",
    "reconcile",
]

SHARD_MANIFEST_SCHEMA = "repro-shard-manifest/1"

#: Store subdirectory holding one manifest per worker run.
MANIFEST_DIR = "manifests"

#: :func:`execute_unit` outcomes.
COMPUTED, SKIPPED, DEFERRED = "computed", "skipped", "deferred"

_log = telemetry.get_logger("dist.worker")


def _resolve(unit: WorkUnit, plan: SweepPlan):
    """A unit's (layer spec, hardware config) under the plan's knobs."""
    from repro.eval.experiments import network_by_name
    from repro.sim.config import config_for

    network = network_by_name(unit.network)
    spec = network.layer(unit.layer)
    cfg = config_for(network)
    if plan.position_sample is not None or plan.batch != 1:
        cfg = cfg.with_sampling(plan.position_sample, batch=plan.batch)
    return spec, cfg


def unit_key(unit: WorkUnit, plan: SweepPlan) -> tuple:
    """The result-memo key this unit publishes under (fidelity-aware)."""
    from repro.analytical.fidelity import fidelity_result_key

    spec, cfg = _resolve(unit, plan)
    return fidelity_result_key(unit.scheme, spec, cfg, unit.seed, plan.fidelity)


def unit_entry(
    store_dir: str | os.PathLike, unit: WorkUnit, plan: SweepPlan
) -> pathlib.Path:
    """The journal entry whose existence marks *unit* done."""
    return checkpoint.entry_path(pathlib.Path(store_dir), unit_key(unit, plan))


@contextmanager
def _shard_env(shard: tuple[int, int] | None):
    """Scope ``REPRO_SHARD`` (the telemetry/event shard tag) to one run.

    The tag must not outlive the run: a later whole-grid call in the
    same process would silently inherit a stale shard filter.
    """
    if shard is None:
        yield
        return
    previous = os.environ.get("REPRO_SHARD")
    os.environ["REPRO_SHARD"] = f"{shard[0]}/{shard[1]}"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHARD", None)
        else:
            os.environ["REPRO_SHARD"] = previous


@contextmanager
def _journal_env(store_dir: str | os.PathLike):
    """Route result journaling into the shared store for the duration."""
    previous = os.environ.get("REPRO_CHECKPOINT_DIR")
    os.environ["REPRO_CHECKPOINT_DIR"] = str(store_dir)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_CHECKPOINT_DIR", None)
        else:
            os.environ["REPRO_CHECKPOINT_DIR"] = previous


def execute_unit(
    store_dir: str | os.PathLike,
    unit: WorkUnit,
    plan: SweepPlan,
    wait: bool = False,
    stolen: bool = False,
) -> str:
    """Bring one unit to the published state (or learn it already is).

    Returns :data:`COMPUTED` (this process simulated and journaled it),
    :data:`SKIPPED` (the entry already exists -- possibly published by a
    peer while we waited) or :data:`DEFERRED` (a peer holds a fresh
    claim and ``wait=False``; revisit later). With ``wait=True`` the
    claim is waited out, so the return is never deferred.
    """
    entry = unit_entry(store_dir, unit, plan)
    started = time.monotonic()
    status = None
    claim = None
    if entry.exists():
        status = SKIPPED
    elif dist_store.single_flight_enabled():
        claim = dist_store.try_claim(entry)
        if claim is None:
            if not wait:
                status = DEFERRED
            else:
                claim, published = dist_store.wait_for_publication(entry)
                if published:
                    status = SKIPPED
                # else: won the lapsed lease (or timed out claimless)
    try:
        if status is None and entry.exists():
            status = SKIPPED  # published between claim and here
        if status is None:
            from repro.analytical.fidelity import simulate_at_fidelity

            spec, cfg = _resolve(unit, plan)
            if claim is not None:
                claim.refresh()
            with _journal_env(store_dir):
                with telemetry.span(
                    "dist.unit", unit=unit.token, stolen=stolen
                ):
                    simulate_at_fidelity(
                        unit.scheme, spec, cfg,
                        seed=unit.seed, fidelity=plan.fidelity,
                    )
                # The memo hit path skips journaling; make sure the
                # publication the fleet coordinates on actually exists.
                if not entry.exists():
                    from repro.core import workload

                    key = unit_key(unit, plan)
                    checkpoint.journal_result(key, workload.lookup_result(key))
            status = COMPUTED
            if stolen:
                telemetry.count("dist.unit.stolen")
    finally:
        if claim is not None:
            claim.release()
    telemetry.count(f"dist.unit.{status}")
    # The wall duration rides on the event so fleet aggregation can
    # reconstruct per-worker trace lanes and flag stragglers.
    events.emit(
        "dist.unit", unit=unit.token, status=status, stolen=stolen,
        seconds=round(time.monotonic() - started, 6),
    )
    return status


def _summary_skeleton(
    store_dir, plan: SweepPlan, shard: tuple[int, int] | None
) -> dict:
    return {
        "schema": SHARD_MANIFEST_SCHEMA,
        "store": str(store_dir),
        "worker": dist_store.worker_identity(),
        "pid": os.getpid(),
        "shard": (
            {"index": shard[0], "count": shard[1]} if shard else None
        ),
        "units_total": len(plan.units),
        "units_own": len(plan.shard_units(shard)),
        "computed": 0,
        "skipped": 0,
        "stolen": 0,
        "deferred": 0,
        "computed_tokens": [],
    }


def _tally(summary: dict, unit: WorkUnit, status: str, stolen: bool) -> None:
    if status == COMPUTED:
        summary["computed"] += 1
        summary["computed_tokens"].append(unit.token)
        if stolen:
            summary["stolen"] += 1
    elif status == SKIPPED:
        summary["skipped"] += 1
    else:
        summary["deferred"] += 1


def run_shard(
    store_dir: str | os.PathLike,
    plan: SweepPlan | None = None,
    shard: tuple[int, int] | None = None,
    steal: bool = True,
    manifest: bool = True,
) -> dict:
    """Execute one shard of the sweep (then steal) and write its manifest.

    Own units get two passes: a claiming pass that defers anything a
    peer is already computing, then a waiting pass that resolves each
    deferral into skip (peer published) or compute (peer died). With
    *steal* on, other shards' unpublished units are then claimed
    opportunistically -- never waited on, because their owner is
    presumed alive until its claims go stale.
    """
    store_dir = pathlib.Path(store_dir)
    if plan is None:
        plan = dist_shard.load_plan(store_dir)
    if shard is None and os.environ.get("REPRO_SHARD"):
        shard = dist_shard.parse_shard(os.environ["REPRO_SHARD"])
    own = plan.shard_units(shard)
    summary = _summary_skeleton(store_dir, plan, shard)
    label = f"shard {shard[0]}/{shard[1]}" if shard else "sweep"
    shard_tag = f"{shard[0]}/{shard[1]}" if shard else None

    def _checkpoint(hb, unit: WorkUnit, status: str, stolen: bool) -> None:
        # Incremental accounting: rewrite the manifest after every
        # tally so a SIGKILL'd worker leaves its computed tokens on
        # disk for reconciliation, and keep the heartbeat warm.
        _tally(summary, unit, status, stolen=stolen)
        hb.update(
            current_unit=None,
            units_done=summary["computed"] + summary["skipped"],
        )
        if manifest:
            write_shard_manifest(store_dir, summary)

    with _shard_env(shard):
        events.emit(
            "dist.shard.start",
            shard=summary["shard"],
            worker=summary["worker"],
            units=len(own),
        )
        with health.beacon(store_dir, shard=shard_tag) as hb:
            with telemetry.span("dist.shard", shard=label, units=len(own)):
                deferred: list[WorkUnit] = []
                with ProgressRenderer(total=len(own), label=label) as progress:
                    for unit in own:
                        hb.update(current_unit=unit.token)
                        status = execute_unit(store_dir, unit, plan, wait=False)
                        if status == DEFERRED:
                            deferred.append(unit)
                        else:
                            _checkpoint(hb, unit, status, stolen=False)
                        progress.update()
                    for unit in deferred:
                        hb.update(current_unit=unit.token)
                        status = execute_unit(store_dir, unit, plan, wait=True)
                        _checkpoint(hb, unit, status, stolen=False)
                if steal:
                    for unit in plan.foreign_units(shard):
                        entry = unit_entry(store_dir, unit, plan)
                        if entry.exists():
                            continue  # published by its owner: not our business
                        hb.update(current_unit=unit.token)
                        status = execute_unit(
                            store_dir, unit, plan, wait=False, stolen=True
                        )
                        if status == COMPUTED:
                            _checkpoint(hb, unit, status, stolen=True)
    events.emit(
        "dist.shard.finish",
        shard=summary["shard"],
        worker=summary["worker"],
        computed=summary["computed"],
        skipped=summary["skipped"],
        stolen=summary["stolen"],
    )
    if manifest:
        write_shard_manifest(store_dir, summary)
    return summary


def run_worker(
    store_dir: str | os.PathLike,
    poll: float | None = None,
    max_idle: float = 60.0,
    shard: tuple[int, int] | None = None,
) -> dict:
    """Long-poll mode: serve a store until its sweep is done (or idle out).

    The worker waits for a plan to be published, then repeatedly runs
    :func:`run_shard` (with stealing) until every unit in the plan has a
    journal entry. *max_idle* bounds how long it lingers with nothing to
    do -- no plan, or nothing left that is not another live worker's
    fresh claim -- so an orphaned worker exits on its own.
    """
    store_dir = pathlib.Path(store_dir)
    poll = dist_store.claim_poll() * 20.0 if poll is None else poll
    idle_since = time.monotonic()
    passes = 0
    last: dict | None = None
    shard_tag = f"{shard[0]}/{shard[1]}" if shard else None
    with health.beacon(store_dir, shard=shard_tag):
        while True:
            plan = dist_shard.load_plan(store_dir, missing_ok=True)
            if plan is None:
                if time.monotonic() - idle_since > max_idle:
                    break
                time.sleep(poll)
                continue
            summary = run_shard(
                store_dir, plan, shard=shard, steal=True,
                manifest=False,
            )
            passes += 1
            if last is None:
                last = summary
            else:
                for field in ("computed", "skipped", "stolen", "deferred"):
                    last[field] += summary[field]
                last["computed_tokens"].extend(summary["computed_tokens"])
            # Publish the accumulated accounting every pass, so even a
            # worker that dies between passes leaves its tally behind.
            last["passes"] = passes
            write_shard_manifest(store_dir, last)
            missing = [
                u for u in plan.units
                if not unit_entry(store_dir, u, plan).exists()
            ]
            if not missing:
                break
            if summary["computed"]:
                idle_since = time.monotonic()
            elif time.monotonic() - idle_since > max_idle:
                _log.warning(
                    "worker idling out %s",
                    telemetry.kv(store=store_dir, missing=len(missing)),
                )
                break
            time.sleep(poll)
    if last is None:
        last = {"schema": SHARD_MANIFEST_SCHEMA, "store": str(store_dir),
                "worker": dist_store.worker_identity(), "pid": os.getpid(),
                "shard": None, "units_total": 0, "units_own": 0,
                "computed": 0, "skipped": 0, "stolen": 0, "deferred": 0,
                "computed_tokens": []}
    last["passes"] = passes
    write_shard_manifest(store_dir, last)
    return last


def write_shard_manifest(store_dir: str | os.PathLike, summary: dict) -> pathlib.Path:
    """Atomically publish one worker's accounting under ``manifests/``.

    File name carries the worker identity, so a restarted worker (new
    pid) writes a *new* manifest rather than clobbering the evidence of
    its previous life -- reconciliation wants both.
    """
    base = pathlib.Path(store_dir) / MANIFEST_DIR
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"shard-{summary['worker']}.json"
    fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    telemetry.count("dist.manifest.written")
    return path


def load_shard_manifests(store_dir: str | os.PathLike) -> list[dict]:
    """Every readable worker manifest under the store (sorted by name)."""
    base = pathlib.Path(store_dir) / MANIFEST_DIR
    manifests = []
    for path in sorted(base.glob("shard-*.json")):
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if raw.get("schema") == SHARD_MANIFEST_SCHEMA:
            manifests.append(raw)
    return manifests


def reconcile(
    store_dir: str | os.PathLike, plan: SweepPlan | None = None
) -> dict:
    """Check per-shard accounting against the journal's ground truth.

    Sums every worker manifest's counters and compares against the
    plan: ``complete`` means every unit has a journal entry;
    ``duplicates`` lists unit tokens more than one manifest claims to
    have computed (the exactly-once violation the claim protocol
    exists to prevent -- always empty in a healthy sweep); ``foreign``
    lists computed tokens that are not in the plan at all (a manifest
    from a different sweep dropped into this store -- never counted as
    a duplicate, but surfaced so the accounting stays explainable).
    """
    store_dir = pathlib.Path(store_dir)
    if plan is None:
        plan = dist_shard.load_plan(store_dir)
    manifests = load_shard_manifests(store_dir)
    plan_tokens = {u.token for u in plan.units}
    published = [
        u.token for u in plan.units
        if unit_entry(store_dir, u, plan).exists()
    ]
    published_set = set(published)
    missing = [u.token for u in plan.units if u.token not in published_set]
    computed_counts: dict[str, int] = {}
    for m in manifests:
        for token in m.get("computed_tokens", ()):
            computed_counts[token] = computed_counts.get(token, 0) + 1
    duplicates = sorted(
        t for t, n in computed_counts.items() if n > 1 and t in plan_tokens
    )
    foreign = sorted(t for t in computed_counts if t not in plan_tokens)
    report = {
        "units": len(plan.units),
        "published": len(published),
        "missing": sorted(missing),
        "complete": not missing,
        "manifests": len(manifests),
        "computed": sum(m.get("computed", 0) for m in manifests),
        "skipped": sum(m.get("skipped", 0) for m in manifests),
        "stolen": sum(m.get("stolen", 0) for m in manifests),
        "duplicates": duplicates,
        "foreign": foreign,
        "exactly_once": not duplicates,
    }
    events.emit("dist.reconcile", **{
        k: v for k, v in report.items()
        if k not in ("missing", "duplicates", "foreign")
    })
    return report
