"""The fleet view: one merged picture of a distributed sweep's store.

:func:`build_fleet_view` folds every observability artifact a sweep
leaves in its shared store -- the published plan, the checkpoint
journal, per-worker manifests, health heartbeats, event streams and
metrics snapshots -- into a single :class:`FleetView`:

- per-shard progress (published / total per shard slice),
- a workers table with liveness verdicts (live / suspect / dead /
  exited, from :mod:`repro.dist.health`),
- fleet throughput and ETA from the merged event stream,
- the exactly-once audit: journal completeness, manifest reconciliation
  (:func:`repro.dist.worker.reconcile`), per-unit computed-event counts,
  and an exact cross-check of event counter totals against the summed
  manifests,
- anomalies: dead workers, stragglers (robust z-score over per-unit
  durations), steals, faults, quarantines, lost attribution.

Two renderers sit on top: :func:`render_top` (one frame of the
``repro top`` dashboard) and :func:`render_inspect` (the ``repro
inspect`` post-mortem report). Everything is read-only: building a
view never mutates the store.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field

from repro.dist import health
from repro.dist import shard as dist_shard
from repro.dist import store as dist_store
from repro.dist import worker as dist_worker
from repro.telemetry import aggregate
from repro.telemetry import events as _events

__all__ = ["FleetView", "build_fleet_view", "render_top", "render_inspect"]

#: Store subdirectory where ``repro sweep``/``repro worker`` default
#: their per-worker event streams (see ``cli._main_dist``).
EVENTS_DIR = "events"

#: Store subdirectory for per-worker Prometheus snapshots.
METRICS_DIR = "metrics"

_ANSI_RED = "\x1b[31m"
_ANSI_YELLOW = "\x1b[33m"
_ANSI_RESET = "\x1b[0m"


@dataclass
class FleetView:
    """Everything known about one sweep store, merged and reconciled."""

    store: str
    units_total: int
    published: int
    per_shard: list = field(default_factory=list)
    workers: list = field(default_factory=list)
    tallies: dict = field(default_factory=dict)
    throughput: float | None = None
    eta_seconds: float | None = None
    cache_hit_rate: float | None = None
    counter_totals: dict = field(default_factory=dict)
    reconcile: dict = field(default_factory=dict)
    audit: dict = field(default_factory=dict)
    stragglers: list = field(default_factory=list)
    anomalies: dict = field(default_factory=dict)
    events_info: dict = field(default_factory=dict)
    metrics_totals: dict = field(default_factory=dict)
    generated_unix: float = 0.0
    #: The merged event records (kept off :meth:`as_dict`; renderers
    #: and the trace writer read them directly).
    records: list = field(default_factory=list, repr=False)

    @property
    def healthy(self) -> bool:
        """The ``repro inspect`` verdict: complete + exactly-once +
        fully attributed + counters reconciled."""
        audit = self.audit
        return bool(
            audit.get("complete")
            and audit.get("exactly_once")
            and audit.get("counters_consistent", True)
            and not audit.get("lost_attribution")
        )

    def as_dict(self) -> dict:
        return {
            "schema": "repro-fleet-view/1",
            "store": self.store,
            "units_total": self.units_total,
            "published": self.published,
            "per_shard": self.per_shard,
            "workers": self.workers,
            "tallies": self.tallies,
            "throughput": self.throughput,
            "eta_seconds": self.eta_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "counter_totals": self.counter_totals,
            "reconcile": self.reconcile,
            "audit": self.audit,
            "stragglers": self.stragglers,
            "anomalies": self.anomalies,
            "events": self.events_info,
            "metrics_totals": self.metrics_totals,
            "healthy": self.healthy,
            "generated_unix": self.generated_unix,
        }

    def chrome_trace(self) -> dict:
        """Merged cross-worker Chrome trace (one lane per worker pid)."""
        return aggregate.merged_chrome_trace(self.records)

    def timeline(self, limit: int | None = None) -> list[str]:
        """Wall-clock ordered fleet timeline lines."""
        return aggregate.fleet_timeline(self.records, limit=limit)


def _shard_count(manifests: list[dict], heartbeats: list[dict]) -> int | None:
    counts = set()
    for m in manifests:
        section = m.get("shard") or {}
        if isinstance(section, dict) and section.get("count"):
            counts.add(int(section["count"]))
    for h in heartbeats:
        shard = h.get("shard")
        if isinstance(shard, str) and "/" in shard:
            try:
                counts.add(dist_shard.parse_shard(shard)[1])
            except ValueError:
                pass
    return max(counts) if counts else None


def _workers_table(
    manifests: list[dict], heartbeats: list[dict], ttl: float | None
) -> list[dict]:
    workers: dict[str, dict] = {}
    for m in manifests:
        name = str(m.get("worker", "?"))
        section = m.get("shard") or {}
        shard = (
            f"{section['index']}/{section['count']}"
            if isinstance(section, dict) and section.get("count")
            else None
        )
        workers[name] = {
            "worker": name,
            "pid": m.get("pid"),
            "host": None,
            "shard": shard,
            "state": None,  # no heartbeat (pre-heartbeat manifest)
            "computed": m.get("computed", 0),
            "skipped": m.get("skipped", 0),
            "stolen": m.get("stolen", 0),
            "units_done": m.get("computed", 0) + m.get("skipped", 0),
            "current_unit": None,
            "age_seconds": None,
            "uptime_seconds": None,
        }
    for h in heartbeats:
        name = str(h.get("worker", "?"))
        entry = workers.setdefault(
            name,
            {
                "worker": name, "pid": None, "host": None, "shard": None,
                "state": None, "computed": 0, "skipped": 0, "stolen": 0,
                "units_done": 0, "current_unit": None,
                "age_seconds": None, "uptime_seconds": None,
            },
        )
        entry.update(
            pid=h.get("pid", entry["pid"]),
            host=h.get("host"),
            shard=h.get("shard") or entry["shard"],
            state=health.classify(h, ttl=ttl),
            current_unit=h.get("current_unit"),
            age_seconds=round(float(h.get("age_seconds", 0.0)), 1),
            uptime_seconds=h.get("uptime_seconds"),
            units_done=max(entry["units_done"], h.get("units_done", 0)),
        )
    return sorted(workers.values(), key=lambda w: w["worker"])


def build_fleet_view(
    store_dir: str | os.PathLike,
    plan: dist_shard.SweepPlan | None = None,
    ttl: float | None = None,
) -> FleetView:
    """Merge every artifact in *store_dir* into one :class:`FleetView`.

    Raises ``FileNotFoundError`` (via :func:`repro.dist.shard.load_plan`)
    when the store has no published plan yet.
    """
    store_dir = pathlib.Path(store_dir)
    if plan is None:
        plan = dist_shard.load_plan(store_dir)
    ttl = dist_store.claim_ttl() if ttl is None else float(ttl)

    published_tokens = {
        u.token for u in plan.units
        if dist_worker.unit_entry(store_dir, u, plan).exists()
    }
    report = dist_worker.reconcile(store_dir, plan)
    manifests = dist_worker.load_shard_manifests(store_dir)
    heartbeats = health.read_health(store_dir)

    merged = aggregate.merge_event_streams(
        sorted((store_dir / EVENTS_DIR).glob("*.jsonl"))
    )
    records = merged.records
    totals = _events.counter_totals(records)
    spans = aggregate.unit_spans(records)

    # -- exactly-once audit ------------------------------------------------
    computed_events: dict[str, int] = {}
    for span in spans:
        if span["status"] == "computed" and span["unit"]:
            computed_events[span["unit"]] = computed_events.get(span["unit"], 0) + 1
    if records:
        lost = sorted(
            t for t in published_tokens if computed_events.get(t, 0) == 0
        )
        event_duplicates = sorted(
            t for t, n in computed_events.items() if n > 1
        )
        counters_consistent = all(
            totals.get(f"dist.unit.{kind}", 0) == report[kind]
            for kind in ("computed", "skipped", "stolen")
        )
    else:
        # No event streams in the store (library-only run): the journal
        # and manifests are the only evidence; nothing to cross-check.
        lost, event_duplicates, counters_consistent = [], [], True
    audit = {
        "units": len(plan.units),
        "published": len(published_tokens),
        "complete": report["complete"],
        "exactly_once": report["exactly_once"] and not event_duplicates,
        "attributed": sum(
            1 for t in published_tokens if computed_events.get(t, 0) > 0
        ),
        "lost_attribution": lost,
        "event_duplicates": event_duplicates,
        "manifest_duplicates": report["duplicates"],
        "foreign": report.get("foreign", []),
        "counters_consistent": counters_consistent,
        "event_computed_total": totals.get("dist.unit.computed", 0),
        "manifest_computed_total": report["computed"],
    }

    # -- per-shard progress ------------------------------------------------
    n_shards = _shard_count(manifests, heartbeats)
    per_shard = []
    for index in range(n_shards or 1):
        shard = (index, n_shards) if n_shards else None
        tokens = [u.token for u in plan.shard_units(shard)]
        per_shard.append(
            {
                "shard": f"{index}/{n_shards}" if n_shards else "all",
                "units": len(tokens),
                "published": sum(1 for t in tokens if t in published_tokens),
            }
        )

    # -- throughput / ETA from the merged stream ---------------------------
    throughput = eta = None
    done_ts = sorted(s["ts"] for s in spans if s["status"] == "computed")
    if len(done_ts) >= 2 and done_ts[-1] > done_ts[0]:
        throughput = (len(done_ts) - 1) / (done_ts[-1] - done_ts[0])
        remaining = len(plan.units) - len(published_tokens)
        if remaining and throughput > 0:
            eta = remaining / throughput

    hits = totals.get("cache.workload.hit", 0)
    misses = totals.get("cache.workload.miss", 0)
    cache_hit_rate = hits / (hits + misses) if hits + misses else None

    faults = sum(
        v for k, v in totals.items() if k.startswith("resilience.fault")
    )
    tallies = {
        "computed": report["computed"],
        "skipped": report["skipped"],
        "stolen": report["stolen"],
        "deferred": totals.get("dist.unit.deferred", 0),
        "retries": totals.get("resilience.retry", 0),
        "claim_steals": totals.get("store.claim.steal", 0),
        "faults": faults,
        "quarantines": totals.get("cache.disk.quarantine", 0),
    }

    workers = _workers_table(manifests, heartbeats, ttl)
    stragglers = aggregate.find_stragglers(spans)
    anomalies = {
        "dead_workers": [w["worker"] for w in workers if w["state"] == health.DEAD],
        "suspect_workers": [
            w["worker"] for w in workers if w["state"] == health.SUSPECT
        ],
        "stragglers": stragglers,
        "steals": report["stolen"],
        "claim_steals": tallies["claim_steals"],
        "faults": faults,
        "quarantines": tallies["quarantines"],
        "lost_attribution": lost,
        "manifest_duplicates": report["duplicates"],
        "foreign": report.get("foreign", []),
        "truncated_event_lines": merged.truncated_lines,
    }

    return FleetView(
        store=str(store_dir),
        units_total=len(plan.units),
        published=len(published_tokens),
        per_shard=per_shard,
        workers=workers,
        tallies=tallies,
        throughput=throughput,
        eta_seconds=eta,
        cache_hit_rate=cache_hit_rate,
        counter_totals=totals,
        reconcile={k: v for k, v in report.items() if k != "missing"},
        audit=audit,
        stragglers=stragglers,
        anomalies=anomalies,
        events_info={
            "streams": len(merged.files),
            "records": len(records),
            "truncated_lines": merged.truncated_lines,
        },
        metrics_totals=aggregate.merge_metrics_snapshots(
            sorted((store_dir / METRICS_DIR).glob("*.prom"))
        ),
        generated_unix=time.time(),
        records=records,
    )


def _fmt_rate(value: float | None, unit: str) -> str:
    return f"{value:.2f} {unit}" if value is not None else "-"


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 90:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.1f}m"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_ANSI_RESET}" if color else text


def render_top(view: FleetView, color: bool = False) -> str:
    """One frame of the ``repro top`` dashboard."""
    pct = 100.0 * view.published / view.units_total if view.units_total else 0.0
    hit = (
        f"{100.0 * view.cache_hit_rate:.0f}%"
        if view.cache_hit_rate is not None
        else "-"
    )
    t = view.tallies
    lines = [
        f"fleet: {view.store}",
        f"progress: {view.published}/{view.units_total} units published"
        f" ({pct:.0f}%)   throughput {_fmt_rate(view.throughput, 'units/s')}"
        f"   eta {_fmt_eta(view.eta_seconds)}",
        f"cache hits {hit}   retries {t['retries']}   steals {t['stolen']}"
        f"   claim-steals {t['claim_steals']}   faults {t['faults']}"
        f"   quarantines {t['quarantines']}",
        "",
        f"{'shard':<8} {'units':>6} {'published':>10}",
    ]
    for row in view.per_shard:
        lines.append(
            f"{row['shard']:<8} {row['units']:>6} {row['published']:>10}"
        )
    lines.append("")
    lines.append(
        f"{'worker':<24} {'pid':>8} {'shard':<6} {'state':<8} "
        f"{'done':>5} {'age':>6}  current"
    )
    for w in view.workers:
        state = w["state"] or "-"
        if state == health.DEAD:
            state = _paint("DEAD", _ANSI_RED, color)
        elif state == health.SUSPECT:
            state = _paint("SUSPECT", _ANSI_YELLOW, color)
        age = f"{w['age_seconds']:.0f}s" if w["age_seconds"] is not None else "-"
        lines.append(
            f"{w['worker']:<24} {str(w['pid'] or '-'):>8} "
            f"{w['shard'] or '-':<6} {state:<8} {w['units_done']:>5} "
            f"{age:>6}  {w['current_unit'] or '-'}"
        )
    dead = view.anomalies["dead_workers"]
    suspect = view.anomalies["suspect_workers"]
    if dead or suspect:
        lines.append("")
        if dead:
            lines.append(_paint(
                f"!! {len(dead)} dead worker(s): {', '.join(dead)}",
                _ANSI_RED, color,
            ))
        if suspect:
            lines.append(_paint(
                f"?  {len(suspect)} suspect worker(s): {', '.join(suspect)}",
                _ANSI_YELLOW, color,
            ))
    return "\n".join(lines)


def render_inspect(view: FleetView, max_timeline: int | None = 40) -> str:
    """The ``repro inspect`` post-mortem report (markdown)."""
    a = view.audit
    t = view.tallies
    yes = lambda flag: "yes" if flag else "**NO**"  # noqa: E731
    lines = [
        f"# Fleet inspection: {view.store}",
        "",
        "## Summary",
        "",
        f"- units: {view.published}/{view.units_total} published",
        f"- workers: {len(view.workers)}"
        f" ({len(view.anomalies['dead_workers'])} dead,"
        f" {len(view.anomalies['suspect_workers'])} suspect)",
        f"- event streams: {view.events_info.get('streams', 0)}"
        f" ({view.events_info.get('records', 0)} records,"
        f" {view.events_info.get('truncated_lines', 0)} torn lines)",
        f"- computed {t['computed']}  skipped {t['skipped']}"
        f"  stolen {t['stolen']}  retries {t['retries']}"
        f"  faults {t['faults']}  quarantines {t['quarantines']}",
        "",
        "## Exactly-once audit",
        "",
        f"- complete (every unit journaled): {yes(a['complete'])}",
        f"- exactly-once (manifests + events): {yes(a['exactly_once'])}",
        f"- counter totals reconcile (events vs manifests):"
        f" {yes(a['counters_consistent'])}"
        f"  (events {a['event_computed_total']:.0f} == manifests"
        f" {a['manifest_computed_total']})",
        f"- attributed: {a['attributed']}/{a['published']} published units"
        f" have a computing worker on record",
        f"- verdict: {'HEALTHY' if view.healthy else 'UNHEALTHY'}",
    ]
    for token in a["manifest_duplicates"][:5]:
        lines.append(f"  - duplicated compute (manifests): `{token}`")
    for token in a["event_duplicates"][:5]:
        lines.append(f"  - duplicated compute (events): `{token}`")
    for token in a["lost_attribution"][:5]:
        lines.append(f"  - published but unattributed: `{token}`")
    for token in a["foreign"][:5]:
        lines.append(f"  - foreign token (not in this plan): `{token}`")
    lines += ["", "## Anomalies", ""]
    dead = view.anomalies["dead_workers"]
    if dead:
        lines.append(f"- **dead workers ({len(dead)})**: {', '.join(dead)}")
    for name in view.anomalies["suspect_workers"]:
        lines.append(f"- suspect worker: {name}")
    for s in view.stragglers[:10]:
        lines.append(
            f"- straggler: `{s['unit']}` took {s['seconds']:.3f}s"
            f" (z={s['zscore']}, pid {s['pid']})"
        )
    if view.anomalies["claim_steals"]:
        lines.append(f"- claim steals: {view.anomalies['claim_steals']:.0f}")
    if t["stolen"]:
        lines.append(f"- stolen units: {t['stolen']}")
    if view.anomalies["truncated_event_lines"]:
        lines.append(
            "- torn event lines (writer killed mid-record):"
            f" {view.anomalies['truncated_event_lines']}"
        )
    if len(lines) > 0 and lines[-1] == "":
        lines.append("- none")
    lines += ["", f"## Timeline ({len(view.records)} events merged)", ""]
    timeline = view.timeline(limit=max_timeline)
    if timeline:
        lines.append("```")
        lines.extend(timeline)
        lines.append("```")
    else:
        lines.append("(no event streams found in the store)")
    return "\n".join(lines)
