"""Command-line interface: regenerate any experiment from the terminal.

Usage::

    python -m repro list
    python -m repro run fig7 [--exact] [--seed N]
    python -m repro run headline --manifest manifest.json --trace trace.json
    python -m repro run headline --resume runs/headline  # checkpoint + resume
    python -m repro run chunk-sweep --network vggnet --layer Layer7
    python -m repro stats manifest.json [--prometheus]
    python -m repro doctor [DIR] [--prune]
    python -m repro bench diff --baseline benchmarks/bench_baseline.json
    python -m repro bench record
    python -m repro sweep --store runs/sweep --shard 0/2 --network alexnet
    python -m repro worker --store runs/sweep
    python -m repro top --store runs/sweep [--once]
    python -m repro inspect --store runs/sweep --trace fleet.json --report post.md

Every experiment of DESIGN.md's index is addressable by a short id; the
rendered rows print to stdout (the same text the benchmark harness writes
to ``benchmarks/output/``). Diagnostics go to stderr via the structured
logger (``REPRO_LOG_LEVEL``). ``--manifest`` writes the run's
self-describing record (git SHA, seed, config hash, env knobs, stage
totals, counters) and ``--trace`` emits a Chrome ``trace_event`` JSON
loadable in ``chrome://tracing`` / Perfetto; ``repro stats`` pretty-prints
a manifest back.

Distributed sweeps: ``repro sweep --store DIR --shard I/N`` runs one
shard of a (network x layer x scheme x seed) grid against a shared
store directory -- any number of shard processes (or hosts mounting the
same directory) cooperate through single-flight claim leases and the
checkpoint journal, so every unit is computed exactly once and a
SIGKILL'd shard's work is resumed or stolen, never redone. ``repro
worker --store DIR`` is the standing long-poll form of the same loop.
``repro top --store DIR`` watches a running fleet live (workers x
shards, throughput, ETA, suspect/dead workers from the store's health
heartbeats); ``repro inspect --store DIR`` reconstructs a finished or
crashed sweep post-mortem -- merged timeline, cross-worker Chrome
trace, exactly-once audit, anomaly report.

``--resume DIR`` journals every finished per-layer result to *DIR* and,
when entries already exist there (a crashed or killed earlier run),
preloads them so only unfinished work re-executes. ``repro doctor``
scans the on-disk workload cache (or any run directory), verifies every
entry, quarantines corruption and -- with ``--prune`` -- deletes
quarantined and orphaned files.

Observability: ``--events PATH`` (or ``REPRO_EVENTS``) streams every
lifecycle transition, cache decision, retry and counter increment to a
schema-versioned JSONL log merged across workers; ``--metrics PATH``
(or ``REPRO_METRICS``) writes Prometheus text-exposition snapshots;
``--progress`` controls the live stderr progress line; ``repro stats
--prometheus`` renders a manifest for a scraper; and ``repro bench
diff`` gates CI on the committed perf baseline.
"""

from __future__ import annotations

import argparse
import os
from typing import Callable

from repro import telemetry
from repro.eval import experiments as exp
from repro.eval import reporting as rep

__all__ = ["main", "EXPERIMENTS"]


def _net(args: argparse.Namespace):
    return exp.network_by_name(args.network)


def _speedup_output(fig, title, args):
    if args.plot:
        from repro.eval.figures import plot_speedup_figure

        return plot_speedup_figure(fig, title)
    return rep.render_speedups(fig, title)


def _run_fig7(args):
    fig = exp.speedup_figure(
        exp.network_by_name("alexnet"), fast=args.fast, seed=args.seed
    )
    return _speedup_output(fig, "Figure 7: AlexNet speedup", args)


def _run_fig8(args):
    fig = exp.speedup_figure(
        exp.network_by_name("googlenet"), fast=args.fast, seed=args.seed
    )
    return _speedup_output(fig, "Figure 8: GoogLeNet speedup", args)


def _run_fig9(args):
    fig = exp.speedup_figure(
        exp.network_by_name("vggnet"), fast=args.fast, seed=args.seed
    )
    return _speedup_output(fig, "Figure 9: VGGNet speedup", args)


def _run_breakdown(args):
    fig = exp.breakdown_figure(_net(args), fast=args.fast, seed=args.seed)
    title = f"Execution-time breakdown: {args.network}"
    if args.plot:
        from repro.eval.figures import plot_breakdown_figure

        return plot_breakdown_figure(fig, title)
    return rep.render_breakdown(fig, title)


def _run_fig13(args):
    return rep.render_energy(exp.energy_figure(fast=args.fast, seed=args.seed))


def _run_fig14(args):
    return rep.render_gb_impact(exp.gb_impact_figure(seed=args.seed))


def _run_fpga(args):
    fig = exp.fpga_figure(_net(args), fast=args.fast, seed=args.seed)
    return _speedup_output(fig, f"FPGA speedup: {args.network}", args)


def _run_table1(args):
    return rep.render_design_goals(exp.design_goals_table())


def _run_table4(args):
    return rep.render_asic_table(exp.asic_table())


def _run_headline(args):
    return rep.render_headline(exp.headline_means(fast=args.fast, seed=args.seed))


def _run_generality(args):
    return rep.render_generality(exp.generality_figure(fast=args.fast, seed=args.seed))


def _run_chunk_sweep(args):
    return rep.render_chunk_sweep(
        exp.chunk_size_sweep(
            layer_name=args.layer, network=_net(args), fast=args.fast, seed=args.seed
        )
    )


def _run_dynamic(args):
    return rep.render_dynamic_dispatch(
        exp.dynamic_dispatch_ablation(
            layer_name=args.layer, network=_net(args), fast=args.fast, seed=args.seed
        )
    )


def _run_dataflows(args):
    return rep.render_dataflows(
        exp.dataflow_figure(layer_name=args.layer, network=_net(args))
    )


def _run_coarse(args):
    return rep.render_coarse_pruning(
        exp.coarse_pruning_table(layer_name=args.layer, network=_net(args), seed=args.seed)
    )


def _run_hpc(args):
    return rep.render_hpc_representation(exp.hpc_representation_figure(seed=args.seed))


def _run_double_buffer(args):
    return rep.render_double_buffer(
        exp.double_buffer_figure(
            layer_name=args.layer, network=_net(args), fast=args.fast, seed=args.seed
        )
    )


def _run_rle(args):
    return rep.render_rle_waste(exp.rle_compute_waste_figure(seed=args.seed))


def _run_proxy_oracle(args):
    return rep.render_proxy_oracle(
        exp.proxy_oracle_figure(
            layer_name=args.layer, network=_net(args), fast=args.fast, seed=args.seed
        )
    )


def _run_density(args):
    return rep.render_density_sensitivity(
        exp.density_sensitivity_figure(fast=args.fast, seed=args.seed)
    )


def _run_model_storage(args):
    rows = exp.model_storage_figure(seed=args.seed)
    lines = ["Whole-model storage: dense vs SparTen representation"]
    for net, row in rows.items():
        lines.append(
            f"{net:10s} dense={row['dense_bytes'] / 1e6:7.2f} MB  "
            f"sparse={row['sparse_bytes'] / 1e6:7.2f} MB  "
            f"reduction={row['reduction']:.2f}x "
            f"(weights {row['filter_reduction']:.2f}x)"
        )
    return "\n".join(lines)


def _run_profile(args):
    from repro.eval.characterize import characterize_layer, render_profile
    from repro.sim.config import config_for

    net = _net(args)
    spec = net.layer(args.layer)
    cfg = config_for(net)
    if args.fast:
        cfg = cfg.with_sampling(200, batch=1)
    return render_profile(characterize_layer(spec, cfg, seed=args.seed))


def _run_scaling(args):
    from repro.sim.sweeps import machine_scaling_sweep, render_scaling

    spec = _net(args).layer(args.layer)
    sweep = machine_scaling_sweep(
        spec, seed=args.seed, fidelity=getattr(args, "fidelity", None)
    )
    return render_scaling(sweep, spec.name)


def _run_prescreen(args):
    from repro.sim.sweeps import prescreened_sweep, render_prescreened

    spec = _net(args).layer(args.layer)
    geometries = tuple(
        (n_clusters, units)
        for n_clusters in (2, 4, 8, 16, 32, 64)
        for units in (4, 8, 16, 32, 64)
    )
    result = prescreened_sweep(spec, geometries, seed=args.seed)
    return render_prescreened(result, spec.name)


#: experiment id -> (runner, description).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig7": (_run_fig7, "AlexNet speedup over Dense (Figure 7)"),
    "fig8": (_run_fig8, "GoogLeNet speedup over Dense (Figure 8)"),
    "fig9": (_run_fig9, "VGGNet speedup over Dense (Figure 9)"),
    "breakdown": (_run_breakdown, "Execution-time breakdown (Figures 10-12)"),
    "fig13": (_run_fig13, "Energy with zero/non-zero splits (Figure 13)"),
    "fig14": (_run_fig14, "Greedy-balancing density impact (Figure 14)"),
    "fpga": (_run_fpga, "FPGA roofline speedups (Figures 15-17)"),
    "table1": (_run_table1, "Design-goal matrix (Table 1)"),
    "table4": (_run_table4, "ASIC area/power (Table 4)"),
    "headline": (_run_headline, "The abstract's headline means"),
    "generality": (_run_generality, "ResNet/MLP/LSTM generality table"),
    "chunk-sweep": (_run_chunk_sweep, "Chunk-size ablation"),
    "dynamic": (_run_dynamic, "GB vs idealised dynamic dispatch"),
    "dataflows": (_run_dataflows, "Filter- vs input-stationary traffic"),
    "coarse-pruning": (_run_coarse, "Fine vs coarse pruning energy"),
    "hpc": (_run_hpc, "Representation verdicts on HPC structures"),
    "double-buffer": (_run_double_buffer, "Memory-latency hiding trace"),
    "rle-waste": (_run_rle, "EIE-style RLE redundant compute"),
    "profile": (_run_profile, "Workload sparsity profile + speedup bounds"),
    "scaling": (_run_scaling, "Machine-size scaling study"),
    "prescreen": (_run_prescreen, "Two-phase sweep: analytical pre-screen + sim"),
    "model-storage": (_run_model_storage, "Whole-model 2-3x storage claim"),
    "proxy-oracle": (_run_proxy_oracle, "Density proxy vs measured-work oracle"),
    "density": (_run_density, "Speedup vs density sensitivity curve"),
}


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="stream JSONL events to PATH (sets REPRO_EVENTS)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write Prometheus metrics snapshots to PATH "
                             "(sets REPRO_METRICS)")
    parser.add_argument("--progress", default=None,
                        choices=("auto", "on", "off"),
                        help="live progress rendering (sets REPRO_PROGRESS; "
                             "default auto: only on a TTY)")


def _apply_observability_flags(args: argparse.Namespace) -> None:
    """Fold the CLI flags into the environment so workers inherit them."""
    if getattr(args, "events", None):
        os.environ["REPRO_EVENTS"] = args.events
    if getattr(args, "metrics", None):
        os.environ["REPRO_METRICS"] = args.metrics
    if getattr(args, "progress", None):
        os.environ["REPRO_PROGRESS"] = args.progress


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparTen reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    report = sub.add_parser(
        "report", help="run every experiment and write a consolidated report"
    )
    report.add_argument("-o", "--output", default="REPORT.md",
                        help="output path (default REPORT.md)")
    report.add_argument("--seed", type=int, default=0, help="workload seed")
    report.add_argument("--trace", metavar="PATH", default=None,
                        help="also write a Chrome trace_event JSON to PATH")
    report.add_argument("--resume", metavar="DIR", default=None,
                        help="checkpoint finished results to DIR and skip "
                             "work already journaled there")
    _add_observability_flags(report)

    run = sub.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--exact", action="store_true",
                     help="full-resolution simulation (slow)")
    run.add_argument("--seed", type=int, default=0, help="workload seed")
    run.add_argument("--network", default="alexnet",
                     help="network for per-network experiments")
    run.add_argument("--layer", default="Layer2",
                     help="layer for per-layer ablations")
    run.add_argument("--plot", action="store_true",
                     help="draw ASCII bars instead of tables (figures only)")
    run.add_argument("--manifest", metavar="PATH", default=None,
                     help="write the run manifest JSON to PATH")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace_event JSON to PATH")
    run.add_argument("--resume", metavar="DIR", default=None,
                     help="journal finished results to DIR and skip work "
                          "already journaled there (checkpoint/resume)")
    run.add_argument("--fidelity", default=None,
                     choices=("analytical", "counters", "timeline", "trace"),
                     help="fidelity-ladder rung for fidelity-aware "
                          "experiments (default: $REPRO_FIDELITY)")
    _add_observability_flags(run)

    estimate = sub.add_parser(
        "estimate",
        help="analytical stall attribution (no cycle-level simulation)",
        description="Predict per-layer cycles and the stall-attribution "
                    "table from density statistics alone -- the "
                    "analytical rung of the fidelity ladder. With "
                    "--compare, also simulate one layer and print "
                    "predicted-vs-simulated deltas.",
    )
    estimate.add_argument("--network", default="alexnet",
                          help="network to estimate (default alexnet)")
    estimate.add_argument("--layer", default=None,
                          help="estimate a single layer instead of the "
                               "whole network")
    estimate.add_argument("--schemes", default=None,
                          help="comma-separated scheme list (default: the "
                               "profiler's dense/one-sided/SparTen set)")
    estimate.add_argument("--compare", metavar="LAYER", default=None,
                          help="also cycle-simulate LAYER and print "
                               "predicted-vs-simulated deltas")
    estimate.add_argument("--exact", action="store_true",
                          help="full-resolution statistics (slow extraction)")
    estimate.add_argument("--seed", type=int, default=0, help="workload seed")

    profile = sub.add_parser(
        "profile",
        help="per-cluster hardware counters and stall attribution",
        description="Run the microarchitectural profiler: simulate the "
                    "chosen schemes with hardware counters on and print "
                    "where every MAC-cycle went (busy / filter-zero / "
                    "barrier wait / permute stall / imbalance / memory).",
    )
    profile.add_argument("--network", default="alexnet",
                         help="network to profile (default alexnet)")
    profile.add_argument("--layer", default=None,
                         help="profile a single layer instead of the "
                              "whole network")
    profile.add_argument("--schemes", default=None,
                         help="comma-separated scheme list (default: the "
                              "dense/one-sided/SparTen-variant Table-3 set)")
    profile.add_argument("--exact", action="store_true",
                         help="full-resolution simulation (slow)")
    profile.add_argument("--seed", type=int, default=0, help="workload seed")
    profile.add_argument("-o", "--output", metavar="PATH", default=None,
                         help="write the profile.json payload to PATH")
    profile.add_argument("--trace", metavar="PATH", default=None,
                         help="write a Chrome trace with per-cluster cycle "
                              "timeline rows to PATH (forces "
                              "REPRO_PROFILE=timeline)")

    stats = sub.add_parser("stats", help="pretty-print a run manifest")
    stats.add_argument("manifest", help="path to a manifest.json")
    stats.add_argument("--prometheus", action="store_true",
                       help="render the manifest's counters/gauges/spans "
                            "in Prometheus text-exposition format")

    bench = sub.add_parser(
        "bench", help="perf-regression tracking over benchmark outputs"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_diff = bench_sub.add_parser(
        "diff", help="compare BENCH_*.json metrics against the baseline"
    )
    bench_diff.add_argument("--baseline",
                            default="benchmarks/bench_baseline.json",
                            help="baseline JSON with per-metric tolerances")
    bench_diff.add_argument("--output-dir", default="benchmarks/output",
                            help="directory holding the BENCH_*.json payloads")
    bench_diff.add_argument("--allow-missing", action="store_true",
                            help="don't fail on baseline metrics absent "
                                 "from the run (partial bench sweeps)")
    bench_record = bench_sub.add_parser(
        "record", help="append current bench metrics to the history file"
    )
    bench_record.add_argument("--output-dir", default="benchmarks/output",
                              help="directory holding the BENCH_*.json payloads")
    bench_record.add_argument("--history",
                              default="benchmarks/bench_history.csv",
                              help="CSV history file to append to")

    sweep = sub.add_parser(
        "sweep",
        help="run one shard of a distributed sweep over a shared store",
        description="Plan a (network x layer x scheme x seed) grid, "
                    "publish it to the shared store directory, and "
                    "execute this process's shard of it. Concurrent "
                    "shards (other processes/hosts on the same store) "
                    "coordinate through claim leases and the checkpoint "
                    "journal: every unit is computed exactly once, and "
                    "a killed shard's units are stolen or resumed.",
    )
    sweep.add_argument("--store", metavar="DIR", required=True,
                       help="shared store directory (plan, journal, "
                            "manifests; cache defaults to DIR/cache)")
    sweep.add_argument("--shard", metavar="I/N", default=None,
                       help="this process's shard (e.g. 0/2); default: "
                            "$REPRO_SHARD, else the whole grid")
    sweep.add_argument("--network", default="alexnet",
                       help="network whose layers form the grid")
    sweep.add_argument("--layers", default=None,
                       help="comma-separated layer subset (default: all)")
    sweep.add_argument("--schemes", default="sparten",
                       help="comma-separated schemes (default: sparten)")
    sweep.add_argument("--seeds", default="0",
                       help="comma-separated workload seeds (default: 0)")
    sweep.add_argument("--sample", type=int, default=200,
                       help="output positions sampled per cluster "
                            "(0 = exact full resolution; default 200)")
    sweep.add_argument("--fidelity", default=None,
                       choices=("analytical", "counters", "timeline", "trace"),
                       help="fidelity-ladder rung for every unit")
    sweep.add_argument("--no-steal", action="store_true",
                       help="do not execute other shards' units after "
                            "finishing this shard's")
    sweep.add_argument("--reconcile", action="store_true",
                       help="after the shard finishes, check per-shard "
                            "manifests against the journal and exit "
                            "non-zero unless the sweep is complete and "
                            "exactly-once")
    sweep.add_argument("--manifest", metavar="PATH", default=None,
                       help="write this shard's run manifest JSON to PATH")
    _add_observability_flags(sweep)

    worker = sub.add_parser(
        "worker",
        help="long-poll worker: serve a shared store until its sweep is done",
        description="Wait for a sweep plan to appear in the store "
                    "directory, then execute (and steal) units until "
                    "every one is published or the worker idles out.",
    )
    worker.add_argument("--store", metavar="DIR", required=True,
                        help="shared store directory to serve")
    worker.add_argument("--shard", metavar="I/N", default=None,
                        help="optional shard identity (affinity for "
                             "that slice; still steals the rest)")
    worker.add_argument("--poll", type=float, default=None,
                        help="seconds between idle polls (default: "
                             "20x REPRO_CLAIM_POLL)")
    worker.add_argument("--max-idle", type=float, default=60.0,
                        help="exit after this many consecutive idle "
                             "seconds (default 60)")
    worker.add_argument("--manifest", metavar="PATH", default=None,
                        help="write the worker's run manifest JSON to PATH")
    _add_observability_flags(worker)

    top = sub.add_parser(
        "top",
        help="live dashboard over a distributed sweep's shared store",
        description="Render a refreshing fleet dashboard from the "
                    "store's health heartbeats, manifests, journal and "
                    "event streams: per-shard progress, throughput and "
                    "ETA, cache hit rate, and a workers table with "
                    "suspect/dead workers highlighted. Off a TTY (or "
                    "with --once) it prints a single snapshot frame.",
    )
    top.add_argument("--store", metavar="DIR", required=True,
                     help="shared store directory to watch")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (implied off-TTY)")

    inspect = sub.add_parser(
        "inspect",
        help="post-mortem reconstruction of a distributed sweep",
        description="Merge every worker's event stream, manifest, "
                    "heartbeat and the checkpoint journal into one "
                    "fleet view: a timestamp-ordered timeline, an "
                    "exactly-once audit (journal vs manifests vs "
                    "event counter totals), and an anomaly report "
                    "(dead workers, stragglers, steals, faults). "
                    "Exits non-zero unless the sweep is complete, "
                    "exactly-once and fully attributed.",
    )
    inspect.add_argument("--store", metavar="DIR", required=True,
                         help="shared store directory to reconstruct")
    inspect.add_argument("--trace", metavar="PATH", default=None,
                         help="write the merged cross-worker Chrome "
                              "trace JSON to PATH")
    inspect.add_argument("--report", metavar="PATH", default=None,
                         help="write the full markdown report to PATH "
                              "(stdout shows a truncated timeline)")
    inspect.add_argument("--json", metavar="PATH", default=None,
                         dest="json_out",
                         help="write the machine-readable FleetView "
                              "payload to PATH")
    inspect.add_argument("--timeline", type=int, default=40,
                         help="max timeline rows printed to stdout "
                              "(default 40; --report gets everything)")

    doctor = sub.add_parser(
        "doctor", help="scan/verify/prune the on-disk workload cache"
    )
    doctor.add_argument(
        "directory", nargs="?", default=None,
        help="directory to scan (default: $REPRO_CACHE_DIR)",
    )
    doctor.add_argument(
        "--prune", action="store_true",
        help="delete quarantined entries and orphaned .tmp files",
    )
    return parser


def _render_dist_summary(summary: dict) -> str:
    shard = summary.get("shard")
    shard_text = (
        f"{shard['index']}/{shard['count']}" if shard else "unsharded"
    )
    lines = [
        f"sweep shard {shard_text}  worker {summary.get('worker', '?')}",
        f"  units (own/total)  {summary.get('units_own', 0)}"
        f"/{summary.get('units_total', 0)}",
        f"  computed           {summary.get('computed', 0)}"
        + (f"  (stolen {summary['stolen']})" if summary.get("stolen") else ""),
        f"  skipped            {summary.get('skipped', 0)}  (already published)",
    ]
    if "passes" in summary:
        lines.append(f"  passes             {summary['passes']}")
    return "\n".join(lines)


def _render_reconcile(report: dict) -> str:
    lines = [
        f"reconcile: {report['published']}/{report['units']} units published"
        f"  ({report['manifests']} worker manifests)",
        f"  computed {report['computed']}  skipped {report['skipped']}"
        f"  stolen {report['stolen']}",
        f"  exactly-once       {'yes' if report['exactly_once'] else 'NO'}",
        f"  complete           {'yes' if report['complete'] else 'NO'}",
    ]
    for token in report["duplicates"][:5]:
        lines.append(f"    duplicated compute: {token}")
    for token in report["missing"][:5]:
        lines.append(f"    missing: {token}")
    return "\n".join(lines)


def _main_dist(args: argparse.Namespace) -> int:
    """The ``sweep`` and ``worker`` subcommands."""
    from repro.dist import shard as dist_shard
    from repro.dist import worker as dist_worker
    from repro.telemetry import events
    from repro.telemetry.metrics import MetricsSnapshotter, metrics_path

    _apply_observability_flags(args)
    if args.shard:
        dist_shard.parse_shard(args.shard)  # fail fast on garbage
        os.environ["REPRO_SHARD"] = args.shard
    if getattr(args, "fidelity", None):
        os.environ["REPRO_FIDELITY"] = args.fidelity
    # The store directory is the one thing workers share; keep the
    # workload disk cache inside it unless the operator says otherwise,
    # so co-operating shards also share the expensive mask work.
    os.environ.setdefault(
        "REPRO_CACHE_DIR", os.path.join(args.store, "cache")
    )
    # Fleet observability artifacts default into the store too, one
    # file per worker identity, which is what `repro top` / `repro
    # inspect` aggregate. Explicit flags/env (including empty-string
    # opt-outs) win over the defaults.
    from repro.dist import store as dist_store_mod

    worker_id = dist_store_mod.worker_identity()
    os.environ.setdefault(
        "REPRO_EVENTS",
        os.path.join(args.store, "events", f"{worker_id}.jsonl"),
    )
    os.environ.setdefault(
        "REPRO_METRICS",
        os.path.join(args.store, "metrics", f"{worker_id}.prom"),
    )
    telemetry.reset()
    events.start_run(command=args.command, store=args.store,
                     shard=os.environ.get("REPRO_SHARD"))
    snapshotter = (
        MetricsSnapshotter(metrics_path()).start() if metrics_path() else None
    )
    shard = (
        dist_shard.parse_shard(os.environ["REPRO_SHARD"])
        if os.environ.get("REPRO_SHARD")
        else None
    )
    exit_code = 0
    if args.command == "worker":
        summary = dist_worker.run_worker(
            args.store, poll=args.poll, max_idle=args.max_idle, shard=shard
        )
        print(_render_dist_summary(summary))
    else:
        network = exp.network_by_name(args.network)
        layer_names = (
            tuple(s.strip() for s in args.layers.split(",") if s.strip())
            if args.layers
            else network.layer_names
        )
        for name in layer_names:
            network.layer(name)  # fail fast on a bad --layers entry
        schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
        from repro.core.compare import ALL_SCHEMES

        unknown = set(schemes) - set(ALL_SCHEMES)
        if unknown:
            raise SystemExit(f"unknown schemes: {sorted(unknown)}")
        seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
        units = tuple(
            dist_shard.WorkUnit(args.network, layer, scheme, seed)
            for layer in layer_names
            for scheme in schemes
            for seed in seeds
        )
        plan = dist_shard.SweepPlan(
            units=units,
            fidelity=args.fidelity,
            position_sample=args.sample if args.sample > 0 else None,
        )
        plan = dist_shard.publish_plan(args.store, plan)
        summary = dist_worker.run_shard(
            args.store, plan, shard=shard, steal=not args.no_steal
        )
        print(_render_dist_summary(summary))
        if args.reconcile:
            report = dist_worker.reconcile(args.store, plan)
            print(_render_reconcile(report))
            exit_code = 0 if report["complete"] and report["exactly_once"] else 1
    events.emit("run.end", command=args.command)
    if args.manifest:
        telemetry.write_manifest(
            args.manifest,
            config={"command": args.command, "store": args.store,
                    "shard": os.environ.get("REPRO_SHARD")},
        )
    if snapshotter is not None:
        snapshotter.stop()
    return exit_code


def _main_top(args: argparse.Namespace) -> int:
    """The ``top`` subcommand: live (TTY) or one-frame dashboard."""
    import sys
    import time as _time

    from repro.dist import fleet

    once = args.once or not sys.stdout.isatty()
    try:
        while True:
            try:
                view = fleet.build_fleet_view(args.store)
                frame = fleet.render_top(view, color=not once)
            except FileNotFoundError as exc:
                if once:
                    print(f"repro top: {exc}")
                    return 1
                frame = f"repro top: waiting for a plan ({exc})"
            if once:
                print(frame)
                return 0
            # Clear + home, then the frame: an in-place refresh without
            # a curses dependency.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            _time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        print()
        return 0


def _main_inspect(args: argparse.Namespace) -> int:
    """The ``inspect`` subcommand: post-mortem fleet reconstruction."""
    import json as _json
    import pathlib

    from repro.dist import fleet

    try:
        view = fleet.build_fleet_view(args.store)
    except FileNotFoundError as exc:
        print(f"repro inspect: {exc}")
        return 2
    print(fleet.render_inspect(view, max_timeline=args.timeline))
    if args.report:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            fleet.render_inspect(view, max_timeline=None) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {args.report}")
    if args.trace:
        path = pathlib.Path(args.trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(view.chrome_trace(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"trace written to {args.trace}")
    if args.json_out:
        path = pathlib.Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(view.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"fleet view written to {args.json_out}")
    return 0 if view.healthy else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_fn, description) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.command == "estimate":
        from repro import profiling
        from repro.analytical import estimate as est

        # Analytical counters ride the same profile switch; escalate off
        # -> counters exactly like the profiler (never downgrade).
        if profiling.profile_mode() == profiling.MODE_OFF:
            os.environ["REPRO_PROFILE"] = profiling.MODE_COUNTERS
        telemetry.reset()
        schemes = (
            tuple(s.strip() for s in args.schemes.split(",") if s.strip())
            if args.schemes
            else est.DEFAULT_ESTIMATE_SCHEMES
        )
        payload = est.estimate_network(
            network=args.network,
            schemes=schemes,
            fast=not args.exact,
            seed=args.seed,
            layer=args.layer,
        )
        print(est.render_estimate(payload))
        if args.compare:
            comparison = est.compare_estimate(
                args.network,
                args.compare,
                schemes=schemes,
                fast=not args.exact,
                seed=args.seed,
            )
            print()
            print(est.render_estimate_comparison(comparison))
        return 0
    if args.command == "profile":
        from repro import profiling

        # The profiler needs counters on; --trace needs timelines too.
        # Only escalate -- never downgrade an explicit REPRO_PROFILE.
        wanted = profiling.MODE_TIMELINE if args.trace else profiling.MODE_COUNTERS
        if profiling.profile_mode() == profiling.MODE_OFF or (
            wanted == profiling.MODE_TIMELINE
            and profiling.profile_mode() != profiling.MODE_TIMELINE
        ):
            os.environ["REPRO_PROFILE"] = wanted
        telemetry.reset()
        profiling.reset_sim_clock()
        schemes = (
            tuple(s.strip() for s in args.schemes.split(",") if s.strip())
            if args.schemes
            else profiling.DEFAULT_SCHEMES
        )
        payload = profiling.profile_network(
            network=args.network,
            schemes=schemes,
            fast=not args.exact,
            seed=args.seed,
            layer=args.layer,
        )
        print(profiling.render_attribution(payload))
        if args.output:
            profiling.write_profile_json(args.output, payload)
            print(f"profile written to {args.output}")
        if args.trace:
            telemetry.write_chrome_trace(args.trace)
            print(f"trace written to {args.trace}")
        return 0
    if args.command == "stats":
        manifest = telemetry.read_manifest(args.manifest)
        if args.prometheus:
            print(telemetry.prometheus_from_manifest(manifest), end="")
        else:
            print(telemetry.render_manifest(manifest))
        return 0
    if args.command == "bench":
        from repro.eval import benchtrack

        current = benchtrack.collect_bench_metrics(args.output_dir)
        if args.bench_command == "record":
            from repro.telemetry.manifest import _git_sha

            rows = benchtrack.append_history(
                args.history, current, git_sha=_git_sha()
            )
            print(f"bench record: appended {rows} metric rows to {args.history}")
            return 0
        from repro.telemetry.manifest import _git_sha

        baseline = benchtrack.load_baseline(args.baseline)
        rows = benchtrack.diff_against_baseline(current, baseline)
        print(benchtrack.render_diff(
            rows, baseline_path=args.baseline, git_sha=_git_sha()
        ))
        failing = benchtrack.regressions(rows, allow_missing=args.allow_missing)
        return 1 if failing else 0
    if args.command in ("sweep", "worker"):
        return _main_dist(args)
    if args.command == "top":
        return _main_top(args)
    if args.command == "inspect":
        return _main_inspect(args)
    if args.command == "doctor":
        from repro.resilience.doctor import render_report, scan_store

        directory = args.directory or os.environ.get("REPRO_CACHE_DIR")
        if not directory:
            print("doctor: no directory given and REPRO_CACHE_DIR is unset")
            return 2
        report = scan_store(directory, prune=args.prune)
        print(render_report(report, prune=args.prune))
        return 0 if report.ok else 1
    if args.command == "report":
        from repro.eval.report import generate_report
        from repro.telemetry import events
        from repro.telemetry.metrics import MetricsSnapshotter, metrics_path

        _apply_observability_flags(args)
        telemetry.reset()
        events.start_run(command="report", seed=args.seed)
        snapshotter = (
            MetricsSnapshotter(metrics_path()).start() if metrics_path() else None
        )
        generate_report(
            path=args.output, seed=args.seed, echo=print, resume=args.resume
        )
        if args.trace:
            telemetry.write_chrome_trace(args.trace)
        events.emit("run.end", command="report")
        if snapshotter is not None:
            snapshotter.stop()
        return 0
    args.fast = not args.exact
    runner, _ = EXPERIMENTS[args.experiment]
    if getattr(args, "fidelity", None):
        # Fidelity-aware paths (sweeps, the pipeline) read the ladder
        # level from the environment; the flag is the per-run override.
        os.environ["REPRO_FIDELITY"] = args.fidelity
    from repro.telemetry import events
    from repro.telemetry.metrics import MetricsSnapshotter, metrics_path

    _apply_observability_flags(args)
    telemetry.reset()  # a clean measurement window for this run
    events.start_run(
        command="run", experiment=args.experiment, seed=args.seed
    )
    snapshotter = (
        MetricsSnapshotter(metrics_path()).start() if metrics_path() else None
    )
    if args.resume:
        from repro.resilience import checkpoint

        # Workers inherit the journal directory through the environment.
        os.environ["REPRO_CHECKPOINT_DIR"] = args.resume
        loaded = checkpoint.preload_journal()
        telemetry.get_logger("cli").info(
            "checkpoint journal active %s",
            telemetry.kv(dir=args.resume, resumed_entries=loaded),
        )
    try:
        print(runner(args))
    except BrokenPipeError:
        # stdout closed early (e.g. piped to `head`): not an error.
        return 0
    # run.end lands before the manifest is assembled, so the event
    # stream's counter totals and the manifest's counters describe the
    # same window and reconcile exactly (benchmarks/check_events.py).
    events.emit("run.end", command="run", experiment=args.experiment)
    if args.manifest:
        telemetry.write_manifest(
            args.manifest,
            seed=args.seed,
            config={
                "experiment": args.experiment,
                "network": args.network,
                "layer": args.layer,
                "fast": args.fast,
                "seed": args.seed,
            },
        )
    if args.trace:
        telemetry.write_chrome_trace(args.trace)
    if snapshotter is not None:
        snapshotter.stop()
    return 0
