"""Observability for the experiment engine: spans, counters, manifests.

One dependency-free layer every expensive path reports into:

- :mod:`repro.telemetry.recorder` -- nestable :func:`span`\\ s with
  attributes, accumulating :func:`count`\\ ers and :func:`gauge`\\ s, and
  picklable :func:`snapshot`\\ s that :func:`merge` across processes (how
  timing survives ``REPRO_JOBS>1``).
- :mod:`repro.telemetry.trace` -- Chrome ``trace_event`` JSON export
  (``chrome://tracing`` / Perfetto).
- :mod:`repro.telemetry.manifest` -- self-describing ``manifest.json``
  records (git SHA, versions, env knobs, config hash, stage totals,
  counter dump) written next to run outputs; ``repro stats`` renders
  them.
- :mod:`repro.telemetry.log` -- the ``REPRO_LOG_LEVEL``-controlled
  structured logger library code uses instead of ``print()``
  (``REPRO_LOG_FORMAT=json`` for machine-readable stderr).
- :mod:`repro.telemetry.events` -- the schema-versioned JSONL event
  stream (``REPRO_EVENTS=path``): every counter increment, cache
  decision, retry, fault and lifecycle transition as one appended line,
  merged across workers at pool join.
- :mod:`repro.telemetry.metrics` -- Prometheus text-exposition rendering
  of the counters/gauges/spans (``repro stats --prometheus``) and the
  ``REPRO_METRICS`` periodic snapshotter.
- :mod:`repro.telemetry.progress` -- the ``REPRO_PROGRESS`` live
  progress renderer (in-place on a TTY, heartbeat lines otherwise).

Recording never influences simulation results: a telemetry-disabled run
produces byte-identical figures.
"""

from repro.telemetry import events
from repro.telemetry.events import (
    EVENTS_SCHEMA,
    counter_totals,
    emit,
    read_events,
    validate_events,
)
from repro.telemetry.log import get_logger, kv
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    read_manifest,
    render_manifest,
    write_manifest,
)
from repro.telemetry.metrics import (
    MetricsSnapshotter,
    parse_prometheus,
    prometheus_from_manifest,
    prometheus_text,
    write_metrics_snapshot,
)
from repro.telemetry.progress import ProgressRenderer
from repro.telemetry.recorder import (
    SNAPSHOT_SCHEMA,
    Recorder,
    count,
    current_span_id,
    gauge,
    get_recorder,
    merge,
    reset,
    set_trace_parent,
    snapshot,
    span,
)
from repro.telemetry.trace import chrome_trace, write_chrome_trace

__all__ = [
    "Recorder",
    "SNAPSHOT_SCHEMA",
    "span",
    "count",
    "gauge",
    "snapshot",
    "merge",
    "reset",
    "get_recorder",
    "current_span_id",
    "set_trace_parent",
    "chrome_trace",
    "write_chrome_trace",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "config_hash",
    "write_manifest",
    "read_manifest",
    "render_manifest",
    "get_logger",
    "kv",
    "events",
    "EVENTS_SCHEMA",
    "emit",
    "read_events",
    "validate_events",
    "counter_totals",
    "MetricsSnapshotter",
    "prometheus_text",
    "prometheus_from_manifest",
    "parse_prometheus",
    "write_metrics_snapshot",
    "ProgressRenderer",
]
