"""Observability for the experiment engine: spans, counters, manifests.

One dependency-free layer every expensive path reports into:

- :mod:`repro.telemetry.recorder` -- nestable :func:`span`\\ s with
  attributes, accumulating :func:`count`\\ ers and :func:`gauge`\\ s, and
  picklable :func:`snapshot`\\ s that :func:`merge` across processes (how
  timing survives ``REPRO_JOBS>1``).
- :mod:`repro.telemetry.trace` -- Chrome ``trace_event`` JSON export
  (``chrome://tracing`` / Perfetto).
- :mod:`repro.telemetry.manifest` -- self-describing ``manifest.json``
  records (git SHA, versions, env knobs, config hash, stage totals,
  counter dump) written next to run outputs; ``repro stats`` renders
  them.
- :mod:`repro.telemetry.log` -- the ``REPRO_LOG_LEVEL``-controlled
  structured logger library code uses instead of ``print()``.

Recording never influences simulation results: a telemetry-disabled run
produces byte-identical figures.
"""

from repro.telemetry.log import get_logger, kv
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    read_manifest,
    render_manifest,
    write_manifest,
)
from repro.telemetry.recorder import (
    SNAPSHOT_SCHEMA,
    Recorder,
    count,
    gauge,
    get_recorder,
    merge,
    reset,
    snapshot,
    span,
)
from repro.telemetry.trace import chrome_trace, write_chrome_trace

__all__ = [
    "Recorder",
    "SNAPSHOT_SCHEMA",
    "span",
    "count",
    "gauge",
    "snapshot",
    "merge",
    "reset",
    "get_recorder",
    "chrome_trace",
    "write_chrome_trace",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "config_hash",
    "write_manifest",
    "read_manifest",
    "render_manifest",
    "get_logger",
    "kv",
]
