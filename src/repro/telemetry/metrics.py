"""Prometheus text-exposition rendering of the telemetry registry.

The recorder already *is* a metrics registry -- accumulating counters,
last-write gauges, span seconds/call totals. This module renders that
state (live, or from a written manifest) in the Prometheus text
exposition format so any scraper-side tooling ingests a run without a
bespoke parser::

    repro stats manifest.json --prometheus     # from a manifest
    python -c "from repro.telemetry import metrics; print(metrics.prometheus_text())"

Name mapping is mechanical and stable: counter ``cache.workload.hit``
becomes ``repro_cache_workload_hit_total``, gauge ``mac_utilization``
becomes ``repro_mac_utilization``, and spans fold into two labelled
families, ``repro_span_seconds_total{span="simulate"}`` and
``repro_span_calls_total{span="simulate"}``.

:func:`parse_prometheus` is the scraper stand-in the tests use to prove
the output round-trips, and :class:`MetricsSnapshotter` writes periodic
snapshot files (``REPRO_METRICS=path`` + ``REPRO_METRICS_INTERVAL``)
for file-based scraping of a long run.
"""

from __future__ import annotations

import os
import pathlib
import re
import socket
import tempfile
import threading
from typing import Mapping

from repro.telemetry.recorder import Recorder, get_recorder

__all__ = [
    "metric_name",
    "default_labels",
    "render_prometheus",
    "prometheus_text",
    "prometheus_from_manifest",
    "parse_prometheus",
    "write_metrics_snapshot",
    "metrics_path",
    "MetricsSnapshotter",
]

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def metrics_path() -> str | None:
    """The snapshot path from ``REPRO_METRICS`` (None = disabled)."""
    path = os.environ.get("REPRO_METRICS")
    return path if path else None


def metric_name(name: str, suffix: str = "") -> str:
    """Map a dotted telemetry name onto a Prometheus metric name."""
    base = _SANITIZE.sub("_", name.strip())
    if not base or base[0].isdigit():
        base = "_" + base
    return f"repro_{base}{suffix}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def default_labels() -> dict[str, str]:
    """Constant per-worker labels stamped on every fleet sample.

    Sharded workers of one sweep all write snapshot files into the same
    store; without identity labels their series collide the moment a
    scraper aggregates them. Keyed off ``REPRO_SHARD`` so an ordinary
    single-process run keeps its label-free exposition (and its tests).
    """
    shard = os.environ.get("REPRO_SHARD")
    if not shard:
        return {}
    try:
        host = socket.gethostname()
    except OSError:
        host = "unknown"
    return {"shard": shard, "pid": str(os.getpid()), "host": host}


def render_prometheus(
    counters: Mapping[str, float],
    gauges: Mapping[str, float] | None = None,
    spans: Mapping[str, Mapping[str, float]] | None = None,
    labels: Mapping[str, str] | None = None,
) -> str:
    """The text-exposition body for one set of telemetry aggregates.

    *labels* (e.g. :func:`default_labels`) are stamped on every sample
    so merged multi-worker scrapes stay distinguishable.
    """
    base = _label_block(labels)
    lines: list[str] = []
    for name in sorted(counters):
        metric = metric_name(name, "_total")
        lines.append(f"# HELP {metric} accumulated repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{base} {_format_value(counters[name])}")
    for name in sorted(gauges or {}):
        metric = metric_name(name)
        lines.append(f"# HELP {metric} last-observed repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{base} {_format_value(gauges[name])}")
    if spans:
        lines.append("# HELP repro_span_seconds_total wall seconds per span name")
        lines.append("# TYPE repro_span_seconds_total counter")
        for name in sorted(spans):
            block = _label_block({**(labels or {}), "span": name})
            lines.append(
                f"repro_span_seconds_total{block} "
                f"{_format_value(spans[name].get('seconds', 0.0))}"
            )
        lines.append("# HELP repro_span_calls_total completed spans per name")
        lines.append("# TYPE repro_span_calls_total counter")
        for name in sorted(spans):
            block = _label_block({**(labels or {}), "span": name})
            lines.append(
                f"repro_span_calls_total{block} "
                f"{_format_value(spans[name].get('calls', 0))}"
            )
    return "\n".join(lines) + "\n"


def prometheus_text(recorder: Recorder | None = None) -> str:
    """Render the live registry (default recorder) as exposition text."""
    rec = recorder if recorder is not None else get_recorder()
    return render_prometheus(
        rec.counters(), rec.gauges(), rec.span_totals(),
        labels=default_labels(),
    )


def prometheus_from_manifest(manifest: Mapping) -> str:
    """Render a written manifest's aggregates as exposition text.

    A sharded run's manifest carries its shard section; forwarding it
    as labels keeps offline rendering identical to what the worker's
    live exposition said (the worker identity ``host-pid`` splits back
    into the same ``host``/``pid`` labels).
    """
    labels: dict[str, str] = {}
    section = manifest.get("shard") or {}
    if isinstance(section, dict):
        if section.get("shard"):
            labels["shard"] = str(section["shard"])
        worker = section.get("worker")
        if worker:
            host, sep, pid = str(worker).rpartition("-")
            if sep and pid.isdigit():
                labels.setdefault("host", host)
                labels.setdefault("pid", pid)
            else:
                labels["worker"] = str(worker)
    return render_prometheus(
        manifest.get("counters") or {},
        manifest.get("gauges") or {},
        manifest.get("spans") or {},
        labels=labels,
    )


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """A minimal scraper: exposition text -> ``{(name, labels): value}``.

    Raises ``ValueError`` on any non-comment line that is not a valid
    sample -- the tests use this as the proof that what we emit is what
    a Prometheus scraper would accept.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a prometheus sample: {line!r}")
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            consumed = 0
            for lm in _LABEL.finditer(raw):
                labels.append(
                    (lm.group(1), lm.group(2).replace('\\"', '"').replace("\\\\", "\\"))
                )
                consumed = lm.end()
            leftover = raw[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(f"line {lineno}: bad label set: {raw!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad sample value: {line!r}") from exc
        key = (match.group("name"), tuple(sorted(labels)))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key}")
        samples[key] = value
    return samples


def write_metrics_snapshot(
    path: str | os.PathLike, recorder: Recorder | None = None
) -> pathlib.Path:
    """Atomically write the current exposition text to *path*."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(recorder))
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


class MetricsSnapshotter:
    """Background thread writing periodic snapshot files for scraping.

    ``start()`` spawns a daemon thread that rewrites *path* every
    *interval* seconds (``REPRO_METRICS_INTERVAL`` when omitted;
    ``<= 0`` disables the thread, leaving only the final snapshot that
    ``stop()`` always writes). Writes are atomic, so a scraper never
    reads a half-written exposition.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        interval: float | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        from repro.core.env import env_float

        self.path = pathlib.Path(path)
        self.interval = (
            env_float("REPRO_METRICS_INTERVAL", 0.0, minimum=0.0)
            if interval is None
            else max(0.0, float(interval))
        )
        self._recorder = recorder
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsSnapshotter":
        if self.interval > 0.0 and self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-metrics", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                write_metrics_snapshot(self.path, self._recorder)
            except OSError:
                pass  # scraping is best-effort; never costs the run

    def stop(self) -> pathlib.Path:
        """Stop the thread (if any) and write one final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return write_metrics_snapshot(self.path, self._recorder)
