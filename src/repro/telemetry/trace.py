"""Chrome ``trace_event`` export for recorded spans.

Serialises a recorder's span events into the Trace Event Format's JSON
object form (``{"traceEvents": [...]}``) with complete ("X") events, one
metadata ("M") ``process_name`` event per pid, and the counter/gauge
aggregates stashed under ``otherData``. The file loads directly in
``chrome://tracing`` and in Perfetto's legacy-trace importer, giving a
flame view of where a figure regeneration spent its time -- including
worker-process lanes when ``REPRO_JOBS>1`` merged their snapshots.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.telemetry.recorder import Recorder, get_recorder

__all__ = ["chrome_trace", "write_chrome_trace"]


def chrome_trace(recorder: Recorder | None = None) -> dict:
    """Build the Trace-Event-Format JSON object for *recorder*'s events.

    Spans recorded in worker processes carry the parent span id that
    was propagated into them (see ``repro.core.parallel``); for every
    cross-process parent/child pair this emits a flow-event arrow
    (``ph: "s"`` at the parent, ``ph: "f"`` at the child) so the
    worker lanes visually nest under the pool-parent span instead of
    floating unanchored. Span ids and parents are also exposed under
    ``args.span_id`` / ``args.parent_span`` for machine consumers.
    """
    rec = recorder if recorder is not None else get_recorder()
    events = rec.events()
    trace_events: list[dict] = []
    seen_pids: set[int] = set()
    seen_tids: set[tuple[int, int]] = set()
    by_id: dict[str, dict] = {
        str(e["id"]): e for e in events if e.get("id") is not None
    }
    flow_seq = 0
    for event in events:
        pid = int(event.get("pid", os.getpid()))
        if pid not in seen_pids:
            seen_pids.add(pid)
            label = event.get("pname") or (
                "repro" if pid == os.getpid() else f"repro worker {pid}"
            )
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        if event.get("tname"):
            tid_key = (pid, int(event.get("tid", 0)))
            if tid_key not in seen_tids:
                seen_tids.add(tid_key)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid_key[1],
                        "args": {"name": str(event["tname"])},
                    }
                )
        record = {
            "name": str(event["name"]),
            "cat": "repro",
            "ph": "X",
            "ts": float(event["ts"]),
            "dur": float(event["dur"]),
            "pid": pid,
            "tid": int(event.get("tid", 0)),
        }
        if event.get("args"):
            record["args"] = {k: _jsonable(v) for k, v in event["args"].items()}
        if event.get("id") is not None:
            record.setdefault("args", {})["span_id"] = str(event["id"])
        if event.get("parent") is not None:
            record.setdefault("args", {})["parent_span"] = str(event["parent"])
        trace_events.append(record)
        # Cross-process nesting: draw a flow arrow from the parent span
        # (in the pool-parent's lane) to this child span (worker lane).
        parent = by_id.get(str(event.get("parent")))
        if parent is not None and int(parent.get("pid", -1)) != pid:
            flow_seq += 1
            trace_events.append(
                {
                    "name": "span_parent",
                    "cat": "repro.flow",
                    "ph": "s",
                    "id": flow_seq,
                    "ts": float(parent["ts"]),
                    "pid": int(parent.get("pid", os.getpid())),
                    "tid": int(parent.get("tid", 0)),
                }
            )
            trace_events.append(
                {
                    "name": "span_parent",
                    "cat": "repro.flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_seq,
                    "ts": float(event["ts"]),
                    "pid": pid,
                    "tid": int(event.get("tid", 0)),
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": rec.span_totals(),
            "counters": rec.counters(),
            "gauges": rec.gauges(),
        },
    }


def write_chrome_trace(
    path: str | pathlib.Path, recorder: Recorder | None = None
) -> pathlib.Path:
    """Write the Chrome trace JSON to *path*; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder)) + "\n")
    return path


def _jsonable(value):
    """Coerce span attribute values to JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
