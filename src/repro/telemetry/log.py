"""Structured logging for library code (``REPRO_LOG_LEVEL``).

Library modules log through here instead of ``print()`` so user-facing
CLI output (experiment rows on stdout) stays separable from diagnostics:
log records go to **stderr** with a timestamped, ``key=value`` friendly
format, and the threshold comes from ``REPRO_LOG_LEVEL`` (``DEBUG``,
``INFO``, ``WARNING`` -- the default -- ``ERROR``, ``CRITICAL``).
``REPRO_LOG_FORMAT=json`` switches stderr to one JSON object per line
(``{"ts", "level", "logger", "message"}``) for log shippers; the human
format stays the default and the switch is re-read per record, so tests
can flip it without reconfiguring handlers.

Use :func:`get_logger` for a namespaced child of the ``repro`` logger and
:func:`kv` to format structured fields consistently::

    log = get_logger("workload")
    log.info("disk cache store %s", kv(path=path, bytes=nbytes))
"""

from __future__ import annotations

import json
import logging
import os
import sys

__all__ = ["get_logger", "kv"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s :: %(message)s"
_configured = False


class _JsonFormatter(logging.Formatter):
    """One JSON object per record, machine-first field set."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _SwitchableFormatter(logging.Formatter):
    """Delegates to the human or JSON formatter per ``REPRO_LOG_FORMAT``.

    Choosing at format time (not configure time) keeps the single
    installed handler valid when tests or long-lived sessions flip the
    environment mid-process.
    """

    def __init__(self) -> None:
        super().__init__(_FORMAT)
        self._human = logging.Formatter(_FORMAT)
        self._json = _JsonFormatter()

    def format(self, record: logging.LogRecord) -> str:
        fmt = os.environ.get("REPRO_LOG_FORMAT", "").strip().lower()
        if fmt == "json":
            return self._json.format(record)
        return self._human.format(record)


class _StderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream lazily keeps records flowing to wherever stderr
    points *now* -- pytest's per-test capture, a redirected fd -- instead
    of the stream object that existed when logging was first configured.
    """

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore it.
        pass


def _level_from_env() -> int:
    name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").strip().upper()
    level = logging.getLevelName(name)
    return level if isinstance(level, int) else logging.WARNING


def _configure_root() -> logging.Logger:
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        _configured = True
        if not root.handlers:
            handler = _StderrHandler()
            handler.setFormatter(_SwitchableFormatter())
            root.addHandler(handler)
        root.propagate = False
    # Re-read the env each call so tests (and long-lived sessions) can
    # adjust verbosity without reconfiguring handlers.
    root.setLevel(_level_from_env())
    return root


def get_logger(name: str | None = None) -> logging.Logger:
    """A configured logger: ``repro`` or the child ``repro.<name>``."""
    root = _configure_root()
    return root.getChild(name) if name else root


def kv(**fields) -> str:
    """``key=value`` rendering for structured log fields (sorted keys)."""
    return " ".join(f"{k}={fields[k]}" for k in sorted(fields))
