"""Run manifests: a self-describing record of one experiment run.

Timeloop-style infrastructures write, next to every run's outputs, a
record of *what* ran (config, seed, code version) and *how* it went
(per-stage wall time, counters). :func:`write_manifest` produces that
record for this engine: git SHA, package versions, the ``REPRO_*``
environment knobs, a content hash of the run configuration, and the
telemetry aggregates (span totals, counters, gauges) of the measurement
window. ``repro stats <manifest.json>`` pretty-prints one back.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import subprocess
import time

from repro.telemetry import events as _events
from repro.telemetry.recorder import Recorder, get_recorder

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "render_manifest",
]

MANIFEST_SCHEMA = "repro-manifest/2"


def _git_sha() -> str | None:
    """The repository HEAD SHA, best-effort (None outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _versions() -> dict[str, str]:
    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }


def config_hash(config: dict | None) -> str | None:
    """Stable short hash of the run configuration dict."""
    if config is None:
        return None
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def build_manifest(
    *,
    seed: int | None = None,
    config: dict | None = None,
    recorder: Recorder | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest dict from the current telemetry window."""
    from repro.analytical.fidelity import fidelity_level
    from repro.dist.shard import shard_identity
    from repro.resilience import resilience_summary

    rec = recorder if recorder is not None else get_recorder()
    snap = rec.snapshot(events=False)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _git_sha(),
        "platform": platform.platform(),
        "versions": _versions(),
        "env": {
            k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
        },
        "seed": seed,
        "fidelity": fidelity_level(),
        "shard": shard_identity(),
        "config": config,
        "config_hash": config_hash(config),
        "spans": snap["spans"],
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "resilience": resilience_summary(snap["counters"]),
        "dropped_events": snap["dropped_events"],
        "events": _events.describe(),
        "metrics_snapshot": os.environ.get("REPRO_METRICS") or None,
    }
    if extra:
        manifest["extra"] = extra
    return manifest


def write_manifest(path: str | pathlib.Path, **kwargs) -> dict:
    """Build the manifest and write it to *path*; returns the dict."""
    manifest = build_manifest(**kwargs)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def read_manifest(path: str | pathlib.Path) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    manifest = json.loads(pathlib.Path(path).read_text())
    if not isinstance(manifest, dict) or "schema" not in manifest:
        raise ValueError(f"{path}: not a repro manifest")
    return manifest


def render_manifest(manifest: dict) -> str:
    """Human-readable rendering for ``repro stats``."""
    lines = [
        f"manifest {manifest.get('schema', '?')}  created {manifest.get('created', '?')}",
        f"git {manifest.get('git_sha') or 'unknown'}  platform {manifest.get('platform', '?')}",
    ]
    versions = manifest.get("versions") or {}
    if versions:
        lines.append(
            "versions " + "  ".join(f"{k}={v}" for k, v in sorted(versions.items()))
        )
    if manifest.get("seed") is not None:
        lines.append(f"seed {manifest['seed']}")
    if manifest.get("fidelity"):
        lines.append(f"fidelity {manifest['fidelity']}")
    if manifest.get("config_hash"):
        lines.append(f"config hash {manifest['config_hash']}")
    config = manifest.get("config") or {}
    for key in sorted(config):
        lines.append(f"  config.{key} = {config[key]}")
    env = manifest.get("env") or {}
    if env:
        lines.append("environment:")
        for key in sorted(env):
            lines.append(f"  {key}={env[key]}")
    spans = manifest.get("spans") or {}
    if spans:
        lines.append("stages (wall seconds, summed across processes):")
        width = max(len(name) for name in spans)
        for name in sorted(spans, key=lambda n: -spans[n].get("seconds", 0.0)):
            agg = spans[name]
            lines.append(
                f"  {name.ljust(width)}  {agg.get('seconds', 0.0):10.4f}s"
                f"  x{int(agg.get('calls', 0))}"
            )
    counters = manifest.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name.ljust(width)}  {shown}")
    resilience = manifest.get("resilience") or {}
    if any(resilience.values()):
        lines.append("resilience:")
        for key in sorted(resilience):
            if resilience[key]:
                lines.append(f"  {key.ljust(18)}  {int(resilience[key])}")
    gauges = manifest.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  {gauges[name]}")
    if manifest.get("dropped_events"):
        lines.append(f"dropped events: {manifest['dropped_events']}")
    ev = manifest.get("events") or {}
    if ev.get("path"):
        lines.append(
            f"event log {ev['path']}  ({ev.get('schema', '?')},"
            f" {int(ev.get('emitted', 0))} events this process)"
        )
    if manifest.get("metrics_snapshot"):
        lines.append(f"metrics snapshot {manifest['metrics_snapshot']}")
    return "\n".join(lines)
