"""Live progress for long runs: in-place TTY line or heartbeat lines.

A :class:`ProgressRenderer` tracks one counted loop (pool items, sweep
points, report experiments) and paints, on **stderr**:

- an in-place ``\\r``-rewritten status line when stderr is a TTY, or
- plain timestamp-friendly heartbeat lines (one every
  ``REPRO_PROGRESS_INTERVAL`` seconds) when it is not -- what you want
  in a CI log or a redirected nohup file.

The line reports items/sec, ETA, the workload-cache hit rate, the retry
count and worker utilization -- the numbers an operator needs to decide
whether a multi-hour sweep is healthy. ``REPRO_PROGRESS`` gates it:

- ``auto`` (default): render only when stderr is a TTY,
- ``1`` / ``on``: always render (heartbeat lines off-TTY),
- ``0`` / ``off``: never.

Every painted update is also emitted to the event stream as a
``progress`` record, so a run's liveness is visible to anything tailing
``REPRO_EVENTS`` even with stderr discarded. Rendering never influences
results and is rate-limited, so a fast loop pays one clock read per
update. Elapsed/rate/ETA arithmetic uses ``time.monotonic()`` -- an NTP
step mid-run must never produce a negative ETA or a wrong rate; wall
time appears only in the event records' ``ts`` display timestamps.
"""

from __future__ import annotations

import os
import sys
import time

from repro.telemetry import events

__all__ = ["ProgressRenderer", "progress_mode"]

_MIN_REDRAW = 0.1  # seconds between in-place repaints


def progress_mode() -> str:
    """The effective mode: ``tty``, ``heartbeat`` or ``off``."""
    raw = os.environ.get("REPRO_PROGRESS", "auto").strip().lower()
    try:
        tty = sys.stderr.isatty()
    except (AttributeError, ValueError):
        tty = False
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw in ("1", "on", "yes", "true"):
        return "tty" if tty else "heartbeat"
    return "tty" if tty else "off"


def _heartbeat_interval() -> float:
    from repro.core.env import env_float

    return env_float("REPRO_PROGRESS_INTERVAL", 5.0, minimum=0.1)


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "?"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressRenderer:
    """Progress over a counted loop, painted to stderr and the event stream.

    Args:
        total: number of items the loop will complete.
        label: short loop name shown on the line (``sweep``, ``pool``).
        stream: output stream (default ``sys.stderr``); tests inject a
            ``StringIO``.
        mode: override the ``REPRO_PROGRESS`` resolution (tests).
    """

    def __init__(self, total: int, label: str = "items", stream=None, mode: str | None = None):
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.mode = mode if mode is not None else progress_mode()
        self.done = 0
        self._t0 = time.monotonic()
        self._last_paint = -float("inf")
        self._last_line_len = 0
        self._interval = _heartbeat_interval()
        self._closed = False

    # -- data ---------------------------------------------------------------

    def _snapshot_stats(self, extra: dict) -> dict:
        elapsed = time.monotonic() - self._t0
        stats = {
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "elapsed": round(elapsed, 3),
        }
        rate = self.done / elapsed if elapsed > 0 else 0.0
        stats["rate"] = round(rate, 3)
        remaining = self.total - self.done
        stats["eta_seconds"] = round(remaining / rate, 1) if rate > 0 else None
        stats.update(extra)
        return stats

    def _line(self, stats: dict) -> str:
        pct = 100.0 * self.done / self.total if self.total else 0.0
        parts = [
            f"{self.label} {self.done}/{self.total} ({pct:.0f}%)",
            f"{stats['rate']:.2f}/s",
            f"eta {_fmt_eta(stats['eta_seconds'] if stats['eta_seconds'] is not None else float('nan'))}",
        ]
        if "cache_hit_rate" in stats and stats["cache_hit_rate"] is not None:
            parts.append(f"cache {100.0 * stats['cache_hit_rate']:.0f}%")
        if stats.get("retries"):
            parts.append(f"retries {int(stats['retries'])}")
        if "workers_busy" in stats and "workers" in stats:
            parts.append(f"workers {int(stats['workers_busy'])}/{int(stats['workers'])}")
        return "  ".join(parts)

    # -- painting -----------------------------------------------------------

    def update(self, done: int | None = None, **stats) -> None:
        """Advance to *done* (or +1) and repaint if the mode/rate allow.

        Extra keyword stats (``cache_hit_rate``, ``retries``,
        ``workers``, ``workers_busy``) enrich the line and the emitted
        ``progress`` event.
        """
        self.done = self.done + 1 if done is None else int(done)
        now = time.monotonic()
        final = self.done >= self.total
        if self.mode == "off":
            # Still heartbeat into the event stream, at the same rate.
            if final or now - self._last_paint >= self._interval:
                self._last_paint = now
                events.emit("progress", **self._snapshot_stats(stats))
            return
        if self.mode == "tty":
            if not final and now - self._last_paint < _MIN_REDRAW:
                return
        elif not final and now - self._last_paint < self._interval:
            return
        self._last_paint = now
        payload = self._snapshot_stats(stats)
        events.emit("progress", **payload)
        line = self._line(payload)
        try:
            if self.mode == "tty":
                pad = " " * max(0, self._last_line_len - len(line))
                self.stream.write("\r" + line + pad)
                self._last_line_len = len(line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.mode = "off"  # a closed/broken stderr ends rendering, not the run

    def close(self) -> None:
        """Finish the line (TTY mode needs the trailing newline)."""
        if self._closed:
            return
        self._closed = True
        if self.mode == "tty" and self._last_line_len:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass

    def __enter__(self) -> "ProgressRenderer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
