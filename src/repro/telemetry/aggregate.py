"""Fleet-wide aggregation over per-worker observability artifacts.

A distributed sweep (:mod:`repro.dist`) leaves one event stream, one
metrics snapshot and one manifest per worker in the shared store. This
module merges those per-worker views back into one fleet-wide picture:

- :func:`merge_event_streams` concatenates every readable JSONL stream
  and sorts the records into the same global ``(ts, pid, seq)`` order
  that :func:`repro.telemetry.events.merge_parts` gives a single run.
  A SIGKILL'd worker can leave a torn final line (killed mid-``write``);
  post-mortem tooling must not choke on the very evidence it exists to
  examine, so unparseable lines are counted, not raised.
- :func:`unit_spans` / :func:`find_stragglers` turn ``dist.unit``
  records into per-unit durations and flag outliers by robust z-score
  (median/MAD -- a handful of genuinely slow units must not drag the
  mean far enough to hide themselves).
- :func:`fleet_timeline` renders the merged stream as a wall-clock
  ordered, human-readable timeline.
- :func:`merged_chrome_trace` folds the merged stream into one Chrome
  ``trace_event`` JSON with one lane (pid) per worker, so a whole
  fleet's schedule is inspectable in a single trace viewer tab.
- :func:`merge_metrics_snapshots` sums Prometheus snapshot files across
  workers, stripping the per-worker identity labels.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field

from repro.telemetry import events as _events

__all__ = [
    "MergedEvents",
    "read_events_lenient",
    "merge_event_streams",
    "unit_spans",
    "robust_zscores",
    "find_stragglers",
    "fleet_timeline",
    "merged_chrome_trace",
    "merge_metrics_snapshots",
]

#: Record kinds excluded from human-facing timelines and trace lanes
#: (high-volume mirrors; their *totals* are reported instead).
HIGH_VOLUME_KINDS = ("counter", "gauge", "progress")

#: Robust z-score above which a computed unit is called a straggler.
STRAGGLER_ZSCORE = 3.5

#: Scale factors making the MAD / mean-absolute-deviation estimates
#: consistent with a stddev under normality.
_MAD_SCALE = 0.6745
_MEANAD_SCALE = 1.2533


@dataclass
class MergedEvents:
    """Every event from every worker stream, globally ordered."""

    records: list = field(default_factory=list)
    files: list = field(default_factory=list)
    truncated_lines: int = 0


def read_events_lenient(path: str | os.PathLike) -> tuple[list[dict], int]:
    """Parse a JSONL stream, skipping torn lines instead of raising.

    Returns ``(records, bad_line_count)``. The strict reader
    (:func:`repro.telemetry.events.read_events`) stays the right tool
    for single-run validation; this one exists for post-mortems where a
    killed writer's last line may be incomplete.
    """
    records: list[dict] = []
    bad = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                bad += 1
    return records, bad


def merge_event_streams(paths) -> MergedEvents:
    """Merge many per-worker streams into one ``(ts, pid, seq)`` order."""
    merged = MergedEvents()
    for path in paths:
        try:
            records, bad = read_events_lenient(path)
        except OSError:
            continue
        merged.files.append(str(path))
        merged.truncated_lines += bad
        merged.records.extend(records)
    merged.records.sort(
        key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0))
    )
    return merged


def unit_spans(records: list[dict]) -> list[dict]:
    """Per-unit execution facts from the merged ``dist.unit`` records."""
    spans: list[dict] = []
    for record in records:
        if record.get("kind") != "dist.unit":
            continue
        spans.append(
            {
                "unit": record.get("unit"),
                "status": record.get("status"),
                "stolen": bool(record.get("stolen")),
                "pid": record.get("pid"),
                "shard": record.get("shard"),
                "ts": float(record.get("ts", 0.0)),
                "seconds": float(record.get("seconds") or 0.0),
            }
        )
    return spans


def robust_zscores(values) -> list[float]:
    """Median/MAD z-scores (outlier-resistant, unlike mean/stddev).

    When the MAD degenerates to zero (more than half the durations
    identical -- common for memo-hit units), fall back to the mean
    absolute deviation around the median, so a lone straggler among
    uniform peers still scores; all-identical values score zero.
    """
    vals = [float(v) for v in values]
    if not vals:
        return []
    med = statistics.median(vals)
    deviations = [abs(v - med) for v in vals]
    mad = statistics.median(deviations)
    if mad > 0.0:
        return [_MAD_SCALE * (v - med) / mad for v in vals]
    meanad = statistics.fmean(deviations)
    if meanad <= 0.0:
        return [0.0] * len(vals)
    return [(v - med) / (_MEANAD_SCALE * meanad) for v in vals]


def find_stragglers(
    spans: list[dict], threshold: float = STRAGGLER_ZSCORE
) -> list[dict]:
    """Computed units whose duration z-score exceeds *threshold*."""
    computed = [
        s for s in spans if s.get("status") == "computed" and s["seconds"] > 0.0
    ]
    scores = robust_zscores([s["seconds"] for s in computed])
    out = []
    for span, score in zip(computed, scores):
        if score >= threshold:
            out.append({**span, "zscore": round(score, 2)})
    out.sort(key=lambda s: -s["zscore"])
    return out


def _detail_fields(record: dict) -> str:
    skip = set(_events.REQUIRED_KEYS) | {"shard"}
    parts = []
    for key in sorted(record):
        if key in skip:
            continue
        parts.append(f"{key}={record[key]}")
    return " ".join(parts)


def fleet_timeline(
    records: list[dict],
    skip_kinds: tuple[str, ...] = HIGH_VOLUME_KINDS,
    limit: int | None = None,
) -> list[str]:
    """Render the merged stream as wall-clock ordered timeline lines.

    Counter/gauge mirrors and progress heartbeats are skipped by
    default -- they dominate the record count but their totals are
    reported separately. *limit* keeps the **tail** (the interesting
    end of a post-mortem) when the timeline is longer.
    """
    lines: list[str] = []
    for record in records:
        kind = record.get("kind", "?")
        if kind in skip_kinds:
            continue
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(float(record.get("ts", 0.0)))
        )
        millis = int(float(record.get("ts", 0.0)) % 1.0 * 1000)
        shard = record.get("shard")
        if isinstance(shard, dict):  # dist.shard.* carry the identity dict
            shard = f"{shard.get('index', '?')}/{shard.get('count', '?')}"
        lines.append(
            f"{stamp}.{millis:03d}  pid={str(record.get('pid', '?')):<8} "
            f"shard={str(shard or '-'):<5} {kind:<18} {_detail_fields(record)}"
        )
    if limit is not None and len(lines) > limit:
        lines = [f"... ({len(lines) - limit} earlier events elided)"] + lines[-limit:]
    return lines


def merged_chrome_trace(records: list[dict]) -> dict:
    """One Chrome ``trace_event`` JSON with one lane per worker pid.

    ``dist.unit`` records (which carry the unit's wall duration) become
    complete ``"X"`` slices ending at their record timestamp; other
    lifecycle events become instant ``"i"`` marks. Counter mirrors are
    folded into ``otherData.counter_totals`` rather than drawn.
    """
    trace: list[dict] = []
    labelled: set[int] = set()
    for record in records:
        pid = int(record.get("pid", 0))
        if pid not in labelled:
            labelled.add(pid)
            shard = record.get("shard")
            label = f"worker {pid}" + (f" (shard {shard})" if shard else "")
            trace.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        kind = record.get("kind")
        if kind in HIGH_VOLUME_KINDS:
            continue
        ts_us = float(record.get("ts", 0.0)) * 1e6
        args = {
            k: v
            for k, v in record.items()
            if k not in ("schema", "ts", "pid", "kind")
        }
        if kind == "dist.unit" and float(record.get("seconds") or 0.0) > 0.0:
            dur_us = float(record["seconds"]) * 1e6
            trace.append(
                {
                    "name": str(record.get("unit")),
                    "cat": "fleet.unit",
                    "ph": "X",
                    "ts": ts_us - dur_us,
                    "dur": dur_us,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
        else:
            trace.append(
                {
                    "name": str(kind),
                    "cat": "fleet.event",
                    "ph": "i",
                    "s": "p",
                    "ts": ts_us,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry.aggregate",
            "counter_totals": _events.counter_totals(records),
        },
    }


def merge_metrics_snapshots(
    paths, strip_labels: tuple[str, ...] = ("pid", "host", "shard", "worker")
) -> dict[str, float]:
    """Sum Prometheus snapshot files across workers.

    Per-worker identity labels are stripped before summing, so the
    result is the fleet total per metric (counters sum exactly; a
    summed gauge is a fleet aggregate, which is the useful reading for
    e.g. buffer high-water marks across workers).
    """
    from repro.telemetry.metrics import parse_prometheus

    totals: dict[str, float] = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                samples = parse_prometheus(fh.read())
        except (OSError, ValueError):
            continue
        for (name, labels), value in samples.items():
            kept = tuple(
                (k, v) for k, v in labels if k not in strip_labels
            )
            key = name
            if kept:
                inner = ",".join(f'{k}="{v}"' for k, v in kept)
                key = f"{name}{{{inner}}}"
            totals[key] = totals.get(key, 0.0) + value
    return totals
