"""Schema-versioned JSONL event stream (``REPRO_EVENTS=path``).

Manifests and counters summarise a run after the fact; the event stream
is the run *as it happens*: one JSON object per line, appended to the
file named by ``REPRO_EVENTS``, emitted from the pipeline, the sweeps,
the resilience machinery (retry / timeout / fault / quarantine), the
cache, and the doctor. Every record carries the stream schema version,
a wall-clock timestamp, the emitting pid and a per-process sequence
number, so merged streams can be validated for lost or duplicated
events.

Two record families:

- **counter mirrors** (``kind == "counter"``): every increment that goes
  through :func:`repro.telemetry.count` is also appended to the stream,
  which is what makes the stream reconcile *exactly* with the manifest's
  counter dump -- both see the same increments, kept or discarded
  together (see below).
- **lifecycle events** (``run.start``, ``pipeline.layer``,
  ``sweep.point``, ``resilience.retry``, ``doctor.quarantine``,
  ``progress`` ...): structured markers with their own attributes.

Cross-process behaviour mirrors the telemetry snapshots: a pool worker
never appends to the main file. Each item *attempt* writes to its own
``<path>.<pid>-<token>-a<n>.part`` side file whose path rides back to
the parent inside the telemetry snapshot; the parent merges exactly the
part files of the attempts whose results it kept (discarded attempts --
retried failures, abandoned timeouts -- are deleted unread, just as
their counter snapshots are discarded). :func:`merge_parts` rewrites
the main file in ``(ts, pid, seq)`` order, so the merged stream is
globally timestamp-sorted at every pool join.

Everything here is inert unless ``REPRO_EVENTS`` is set: the fast path
of :func:`emit` is a single environment lookup.
"""

from __future__ import annotations

import glob
import json
import os
import pathlib
import tempfile
import threading
import time
from typing import Any

__all__ = [
    "EVENTS_SCHEMA",
    "emit",
    "enabled",
    "events_path",
    "current_seq",
    "start_run",
    "describe",
    "read_events",
    "validate_events",
    "counter_totals",
    "merge_parts",
    "begin_attempt",
    "end_attempt",
    "set_worker_mode",
]

#: Event-stream schema version (bumped on incompatible record changes).
EVENTS_SCHEMA = "repro-events/1"

#: Record keys every event must carry (validated by :func:`validate_events`).
REQUIRED_KEYS = ("schema", "ts", "pid", "seq", "kind")

_lock = threading.RLock()
_seq = 0  # per-process, monotone across sink switches (dedup identity)
_sink_path: str | None = None  # path the open handle points at
_sink_file = None
_part_override: str | None = None  # worker-attempt side file, beats the env
_worker_mode = False  # in a pool worker: never touch the main file
_emitted_main = 0  # records in the main file owed to this process (incl. merges)


def events_path() -> str | None:
    """The main stream path from ``REPRO_EVENTS`` (None = disabled)."""
    path = os.environ.get("REPRO_EVENTS")
    return path if path else None


def enabled() -> bool:
    """Whether any sink (main file or worker part file) is active."""
    return _resolve_path() is not None


def _resolve_path() -> str | None:
    if _part_override is not None:
        return _part_override
    if _worker_mode:
        # A pool worker outside an item attempt has no sink: the main
        # file belongs to the parent process alone.
        return None
    return events_path()


def set_worker_mode() -> None:
    """Mark this process as a pool worker (called by the pool initializer).

    Workers only ever write through the per-attempt part files that
    :func:`begin_attempt` opens; between attempts the stream is off.
    """
    global _worker_mode
    with _lock:
        _worker_mode = True
        _close_locked()


def _close_locked() -> None:
    global _sink_file, _sink_path
    if _sink_file is not None:
        try:
            _sink_file.close()
        except OSError:
            pass
    _sink_file = None
    _sink_path = None


def _ensure_open_locked(path: str):
    global _sink_file, _sink_path
    if _sink_file is None or _sink_path != path:
        _close_locked()
        pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
        _sink_file = open(path, "a", encoding="utf-8")
        _sink_path = path
    return _sink_file


def _jsonable(value: Any):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def emit(kind: str, name: str | None = None, value: float | None = None, **fields) -> bool:
    """Append one event record; returns whether anything was written.

    A no-op (one env lookup) when no sink is active. *fields* are
    coerced to JSON-safe values, so span attributes and paths can be
    passed directly.
    """
    global _seq, _emitted_main
    path = _resolve_path()
    if path is None:
        return False
    with _lock:
        record: dict = {
            "schema": EVENTS_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "seq": _seq,
            "kind": str(kind),
        }
        _seq += 1
        if name is not None:
            record["name"] = str(name)
        if value is not None:
            record["value"] = float(value)
        for key, val in fields.items():
            if key not in record:
                record[key] = _jsonable(val)
        shard = os.environ.get("REPRO_SHARD")
        if shard and "shard" not in record:
            # Shard identity rides on every record so per-shard slices
            # of a merged multi-worker stream reconcile to sweep totals.
            record["shard"] = shard
        try:
            fh = _ensure_open_locked(path)
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()  # line-granular durability: a crash loses nothing
        except OSError:
            return False  # the stream is best-effort, never costs a run
        if _part_override is None:
            _emitted_main += 1
        return True


def current_seq() -> int:
    """This process's next event sequence number.

    Monotone across sink switches, so a health heartbeat recording it
    tells a post-mortem reader how far the worker's stream had advanced
    when the heartbeat was written.
    """
    with _lock:
        return _seq


def mirror_counter(name: str, value: float) -> None:
    """Counter-increment mirror hook (called by ``telemetry.count``)."""
    emit("counter", name=name, value=value)


def mirror_gauge(name: str, value: float) -> None:
    """Gauge-observation mirror hook (called by ``telemetry.gauge``)."""
    emit("gauge", name=name, value=value)


def start_run(**fields) -> None:
    """Open a fresh stream window: truncate the main file, mark the start.

    Called next to ``telemetry.reset()`` so the stream covers exactly
    the same measurement window as the manifest's counters -- that
    alignment is what makes the reconciliation check exact. Stale
    ``.part`` files from an earlier abandoned run are swept too.
    """
    global _emitted_main
    path = events_path()
    if path is None:
        return
    with _lock:
        _close_locked()
        pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
        open(path, "w", encoding="utf-8").close()
        _emitted_main = 0
        for stale in glob.glob(glob.escape(path) + ".*.part"):
            try:
                os.unlink(stale)
            except OSError:
                pass
    emit("run.start", **fields)


def describe() -> dict | None:
    """The manifest's ``events`` section: path, schema, emitted count."""
    path = events_path()
    if path is None:
        return None
    with _lock:
        return {"path": path, "schema": EVENTS_SCHEMA, "emitted": _emitted_main}


# -- worker-attempt part files ----------------------------------------------


def begin_attempt(token: str, attempt: int) -> None:
    """Route this process's events to a fresh per-attempt part file.

    Called by the pool worker wrapper before running an item; the part
    file's fate is tied to the attempt's: kept attempts are merged by
    the parent, failed ones deleted unread.
    """
    global _part_override
    base = events_path()
    with _lock:
        _close_locked()
        if base is None:
            _part_override = None
            return
        _part_override = f"{base}.{os.getpid()}-{token}-a{int(attempt)}.part"
        # Truncate: a re-run attempt number (pool resubmission after a
        # pid reuse) must not append to a stale file.
        try:
            pathlib.Path(_part_override).parent.mkdir(parents=True, exist_ok=True)
            open(_part_override, "w", encoding="utf-8").close()
        except OSError:
            _part_override = None


def end_attempt() -> str | None:
    """Close the per-attempt part file; returns its path (None if off).

    The returned path travels back to the parent inside the telemetry
    snapshot, flushed and closed before the result is returned, so a
    kept result always names a complete part file.
    """
    global _part_override
    with _lock:
        path = _part_override
        _close_locked()
        _part_override = None
    return path


def merge_parts(kept_parts: list[str]) -> int:
    """Fold kept worker part files into the main stream at pool join.

    Reads the main file plus every readable *kept* part, sorts all
    records by ``(ts, pid, seq)`` and atomically rewrites the main
    file; then deletes **every** ``<path>.*.part`` side file (kept and
    discarded alike). Returns the number of merged worker records.
    """
    global _emitted_main
    path = events_path()
    if path is None:
        return 0
    merged = 0
    with _lock:
        _close_locked()
        records: list[dict] = []
        try:
            records.extend(read_events(path))
        except OSError:
            pass
        for part in kept_parts:
            if not part:
                continue
            try:
                part_records = read_events(part)
            except OSError:
                continue
            merged += len(part_records)
            records.extend(part_records)
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0)))
        try:
            base = pathlib.Path(path)
            base.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=base.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, path)
            _emitted_main += merged
        except OSError:
            return 0
        for stale in glob.glob(glob.escape(path) + ".*.part"):
            try:
                os.unlink(stale)
            except OSError:
                pass
    return merged


# -- reading / validation ---------------------------------------------------


def read_events(path: str | os.PathLike) -> list[dict]:
    """Parse one JSONL stream file into a list of record dicts.

    Raises ``OSError`` if the file cannot be read and ``ValueError`` on
    a line that is not a JSON object.
    """
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records


def validate_events(records: list[dict], allow_gaps: bool = False) -> dict:
    """Check stream invariants; raises ``ValueError`` on any violation.

    Every record must carry the required keys and the supported schema
    version; ``(pid, seq)`` must be unique (no duplicated events) and
    ``seq`` gap-free per pid over the records that pid contributed (no
    lost events); each pid's ``(ts, seq)`` must be non-decreasing in its
    own emission order. Ordering is deliberately *not* enforced across
    pids: workers on different hosts (or across an NTP step) have
    skewed wall clocks, so equal or backward timestamps between
    processes are normal -- :func:`merge_parts` already gives the
    merged stream a stable ``(ts, pid, seq)`` order for readers.
    *allow_gaps* relaxes the per-pid contiguity check for runs with
    injected faults, where discarded attempts legitimately consume
    sequence numbers whose part files are deleted unread.
    Returns a summary ``{"records": n, "pids": [...], "kinds": {...}}``.
    """
    seen: set[tuple[int, int]] = set()
    per_pid: dict[int, list[int]] = {}
    kinds: dict[str, int] = {}
    last_by_pid: dict[int, tuple[float, int]] = {}
    for i, record in enumerate(records):
        for key in REQUIRED_KEYS:
            if key not in record:
                raise ValueError(f"record {i}: missing required key {key!r}")
        if record["schema"] != EVENTS_SCHEMA:
            raise ValueError(
                f"record {i}: schema {record['schema']!r} != {EVENTS_SCHEMA!r}"
            )
        ident = (int(record["pid"]), int(record["seq"]))
        if ident in seen:
            raise ValueError(f"record {i}: duplicated event (pid, seq)={ident}")
        seen.add(ident)
        per_pid.setdefault(ident[0], []).append(ident[1])
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        mark = (float(record["ts"]), ident[1])
        last = last_by_pid.get(ident[0])
        if last is not None and mark < last:
            raise ValueError(
                f"record {i}: pid {ident[0]} timestamp regressed "
                f"({mark} < {last})"
            )
        last_by_pid[ident[0]] = mark
    if not allow_gaps:
        for pid, seqs in per_pid.items():
            expected = set(range(min(seqs), min(seqs) + len(seqs)))
            if set(seqs) != expected:
                missing = sorted(expected - set(seqs))[:5]
                raise ValueError(f"pid {pid}: lost events (missing seq {missing} ...)")
    return {"records": len(records), "pids": sorted(per_pid), "kinds": kinds}


def counter_totals(records: list[dict]) -> dict[str, float]:
    """Sum the mirrored counter increments: ``{counter name: total}``.

    This is the stream-side of the reconciliation invariant: for a run
    whose stream window matches its telemetry window, these totals
    equal the manifest's ``counters`` section exactly.
    """
    totals: dict[str, float] = {}
    for record in records:
        if record.get("kind") == "counter" and "name" in record:
            totals[record["name"]] = totals.get(record["name"], 0.0) + float(
                record.get("value", 1.0)
            )
    return totals
