"""The per-run telemetry recorder: spans, counters, gauges, merging.

Everything the experiment engine wants to observe at runtime funnels
through one :class:`Recorder`:

- **Spans** (:meth:`Recorder.span`) are nestable timed regions with
  attributes (layer, network, scheme, kernel path). Each completed span
  accumulates into a ``{name: {seconds, calls}}`` aggregate -- the same
  shape :mod:`repro.core.timing` has always exposed -- and, up to a
  bounded event budget, records a Chrome ``trace_event``-compatible
  record (see :mod:`repro.telemetry.trace`). Attributes propagate: a
  span opened inside another span inherits the parent's attributes
  (its own win on collision), so a ``simulate`` span under a
  ``layer=Layer2`` span is attributed to that layer without every call
  site re-stating it.
- **Counters** (:meth:`Recorder.count`) are monotonically accumulating
  floats -- cache hits, kernel dispatches, bytes packed. **Gauges**
  (:meth:`Recorder.gauge`) are last-write-wins observations.
- **Snapshots** (:meth:`Recorder.snapshot`) are plain JSON-able dicts, so
  a worker process can ship its whole telemetry state back to the parent
  which merges it (:meth:`Recorder.merge`): span seconds and counters
  add, gauges update, events concatenate. That is what makes timing and
  cache statistics survive ``REPRO_JOBS>1`` fan-out.

The module-level functions (:func:`span`, :func:`count`, ...) operate on
one process-global default recorder, which is what the library
instrumentation uses. Recording is cheap (a dict update and, within the
event budget, one small dict append per span) and never influences
simulation results; ``REPRO_TRACE_EVENTS=0`` drops event records
entirely while keeping the aggregates.
"""

from __future__ import annotations

import os
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry import events as _events

__all__ = [
    "Recorder",
    "get_recorder",
    "span",
    "count",
    "gauge",
    "snapshot",
    "merge",
    "reset",
    "current_span_id",
    "set_trace_parent",
]

#: Snapshot schema version (bumped on incompatible shape changes).
SNAPSHOT_SCHEMA = "repro-telemetry/1"

_DEFAULT_MAX_EVENTS = 100_000


def _max_events() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_TRACE_EVENTS", _DEFAULT_MAX_EVENTS)))
    except ValueError:
        return _DEFAULT_MAX_EVENTS


class Recorder:
    """Thread-safe telemetry sink for one process (or one merged run)."""

    def __init__(self, max_events: int | None = None) -> None:
        self._max_events = max_events
        self._lock = threading.Lock()
        self._local = threading.local()
        # Cross-process trace context: the parent span id a worker's
        # top-level spans re-parent under. Process-level, so it survives
        # reset() -- a worker sets it once per attempt.
        self._trace_parent: str | None = None
        self._span_seq = 0
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._wall: dict[str, float] = defaultdict(float)
        self._calls: dict[str, int] = defaultdict(int)
        self._counters: dict[str, float] = defaultdict(float)
        self._gauges: dict[str, float] = {}
        self._events: list[dict] = []
        self._dropped_events = 0
        # Anchor mapping perf_counter() durations onto the wall clock so
        # events from different processes share one trace timeline.
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    # -- spans --------------------------------------------------------------

    def _stack(self) -> list[dict]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _id_stack(self) -> list[str]:
        ids = getattr(self._local, "ids", None)
        if ids is None:
            ids = self._local.ids = []
        return ids

    def _next_span_id(self) -> str:
        """A run-unique span id: ``<pid hex>-<per-process counter hex>``.

        The pid component keeps ids collision-free when worker snapshots
        merge into the parent's event list.
        """
        with self._lock:
            self._span_seq += 1
            return f"{os.getpid():x}-{self._span_seq:x}"

    def current_span_id(self) -> str | None:
        """The innermost open span's id on this thread (or the trace parent).

        This is the trace context a caller propagates into a child
        process so the child's spans nest under it in the merged trace.
        """
        ids = self._id_stack()
        return ids[-1] if ids else self._trace_parent

    def set_trace_parent(self, span_id: str | None) -> None:
        """Adopt *span_id* as the parent for this process's root spans."""
        self._trace_parent = span_id

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time the enclosed block under *name*, inheriting parent attrs."""
        stack = self._stack()
        ids = self._id_stack()
        parent_attrs = stack[-1] if stack else {}
        effective = {**parent_attrs, **attrs} if (parent_attrs or attrs) else {}
        span_id = self._next_span_id()
        parent_id = ids[-1] if ids else self._trace_parent
        stack.append(effective)
        ids.append(span_id)
        depth = len(stack)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - t0
            stack.pop()
            ids.pop()
            with self._lock:
                self._wall[name] += dur
                self._calls[name] += 1
                budget = (
                    self._max_events if self._max_events is not None else _max_events()
                )
                if len(self._events) < budget:
                    ts = self._epoch_wall + (t0 - self._epoch_perf)
                    event = {
                        "name": name,
                        "ts": ts * 1e6,  # microseconds, trace_event convention
                        "dur": dur * 1e6,
                        "pid": os.getpid(),
                        "tid": threading.get_ident(),
                        "depth": depth,
                        "id": span_id,
                    }
                    if parent_id is not None:
                        event["parent"] = parent_id
                    if effective:
                        event["args"] = dict(effective)
                    self._events.append(event)
                else:
                    self._dropped_events += 1

    def emit_event(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int | None = None,
        tid: int | None = None,
        args: dict | None = None,
        pname: str | None = None,
        tname: str | None = None,
    ) -> bool:
        """Record one raw complete event (trace timestamps in microseconds).

        Used by the profiler to place rows on synthetic timelines (e.g.
        per-cluster simulated-cycle lanes) rather than the wall clock.
        *pname*/*tname* name the trace process/thread rows; the Chrome
        exporter turns them into metadata records. Subject to the same
        event budget as spans; returns ``False`` when dropped.
        """
        with self._lock:
            budget = (
                self._max_events if self._max_events is not None else _max_events()
            )
            if len(self._events) >= budget:
                self._dropped_events += 1
                return False
            event: dict = {
                "name": name,
                "ts": float(ts),
                "dur": float(dur),
                "pid": int(pid) if pid is not None else os.getpid(),
                "tid": int(tid) if tid is not None else 0,
                "depth": 1,
            }
            if args:
                event["args"] = dict(args)
            if pname:
                event["pname"] = pname
            if tname:
                event["tname"] = tname
            self._events.append(event)
            return True

    def current_attrs(self) -> dict:
        """Attributes of the innermost open span on this thread."""
        stack = self._stack()
        return dict(stack[-1]) if stack else {}

    # -- counters / gauges --------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the accumulating counter *name*."""
        with self._lock:
            self._counters[name] += value

    def gauge(self, name: str, value: float) -> None:
        """Record the last-observed value of *name*."""
        with self._lock:
            self._gauges[name] = value

    # -- snapshot / merge / reset -------------------------------------------

    def span_totals(self) -> dict[str, dict[str, float]]:
        """Aggregated spans: ``{name: {"seconds": s, "calls": n}}``."""
        with self._lock:
            return {
                k: {"seconds": self._wall[k], "calls": self._calls[k]}
                for k in sorted(self._wall)
            }

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def events(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._events]

    def snapshot(self, events: bool = True) -> dict:
        """The whole telemetry state as a plain JSON-able dict.

        Workers return this alongside their results; the parent merges
        it with :meth:`merge`. ``events=False`` omits the per-span event
        records (manifests want only the aggregates).
        """
        with self._lock:
            snap: dict = {
                "schema": SNAPSHOT_SCHEMA,
                "pid": os.getpid(),
                "spans": {
                    k: {"seconds": self._wall[k], "calls": self._calls[k]}
                    for k in sorted(self._wall)
                },
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "dropped_events": self._dropped_events,
            }
            if events:
                snap["events"] = [dict(e) for e in self._events]
            return snap

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (typically from a worker process) into this one."""
        if not snap:
            return
        with self._lock:
            for name, agg in snap.get("spans", {}).items():
                self._wall[name] += float(agg.get("seconds", 0.0))
                self._calls[name] += int(agg.get("calls", 0))
            for name, value in snap.get("counters", {}).items():
                self._counters[name] += float(value)
            self._gauges.update(snap.get("gauges", {}))
            self._dropped_events += int(snap.get("dropped_events", 0))
            budget = self._max_events if self._max_events is not None else _max_events()
            for event in snap.get("events", []):
                if len(self._events) < budget:
                    self._events.append(dict(event))
                else:
                    self._dropped_events += 1

    def reset(self) -> None:
        """Start a fresh measurement window (spans, counters, events)."""
        with self._lock:
            self._reset_locked()


_RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The process-global default recorder."""
    return _RECORDER


def span(name: str, **attrs: Any):
    """``with telemetry.span("simulate", layer="L2"): ...`` on the default recorder."""
    return _RECORDER.span(name, **attrs)


def count(name: str, value: float = 1.0) -> None:
    """Add *value* to a counter on the default recorder.

    Increments through this function (all library instrumentation) are
    also mirrored into the JSONL event stream when ``REPRO_EVENTS`` is
    active -- that one-to-one mirroring is what lets a merged stream
    reconcile exactly with the manifest's counter dump.
    """
    _RECORDER.count(name, value)
    _events.mirror_counter(name, value)


def gauge(name: str, value: float) -> None:
    """Record a gauge observation on the default recorder (mirrored)."""
    _RECORDER.gauge(name, value)
    _events.mirror_gauge(name, value)


def current_span_id() -> str | None:
    """The default recorder's innermost open span id (trace context)."""
    return _RECORDER.current_span_id()


def set_trace_parent(span_id: str | None) -> None:
    """Set the default recorder's cross-process trace parent."""
    _RECORDER.set_trace_parent(span_id)


def snapshot(events: bool = True) -> dict:
    """Snapshot the default recorder."""
    return _RECORDER.snapshot(events=events)


def merge(snap: dict) -> None:
    """Merge a (worker) snapshot into the default recorder."""
    _RECORDER.merge(snap)


def reset() -> None:
    """Reset the default recorder's measurement window."""
    _RECORDER.reset()
