"""Greedy balancing in action: Figure 14 plus utilisation numbers.

Run:  python examples/load_balancing.py

Shows the load-imbalance problem (per-chunk filter densities vary widely
after pruning) and how GB-S / GB-H fix it: plan construction, the density
distributions before/after pairing, expected utilisation per variant, and
the measured speedup each variant earns on AlexNet Layer 2.
"""

import numpy as np

from repro.balance.greedy import gb_h_plan, gb_s_plan, no_gb_plan
from repro.balance.metrics import figure14_distribution, plan_utilization
from repro.eval.reporting import render_gb_impact
from repro.nets.models import alexnet
from repro.nets.synthesis import synthesize_layer
from repro.sim.config import LARGE_CONFIG
from repro.sim.dense import simulate_dense
from repro.sim.kernels import compute_chunk_work
from repro.sim.sparten import simulate_sparten


def ascii_curve(values: np.ndarray, width: int = 60, height: int = 8) -> str:
    """A terminal sketch of a sorted density curve."""
    idx = np.linspace(0, values.size - 1, width).astype(int)
    samples = values[idx]
    top = samples.max() if samples.max() > 0 else 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        rows.append("".join("#" if v >= threshold else " " for v in samples))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    spec = alexnet().layer("Layer2")
    cfg = LARGE_CONFIG
    data = synthesize_layer(spec, seed=0)
    masks = data.filter_masks

    print(f"Layer: AlexNet {spec.name} -- {spec.n_filters} filters of "
          f"{spec.kernel}x{spec.kernel}x{spec.in_channels}, "
          f"target density {spec.filter_density:.2f}\n")

    plans = {
        "no_gb": no_gb_plan(masks, cfg.units_per_cluster),
        "gb_s": gb_s_plan(masks, cfg.units_per_cluster),
        "gb_h": gb_h_plan(masks, cfg.units_per_cluster, chunk_size=cfg.chunk_size),
    }

    print("Expected utilisation (density-proxy, Figure 6's shaded fraction):")
    for name, plan in plans.items():
        util = plan_utilization(plan, masks, chunk_size=cfg.chunk_size)
        print(f"  {name:6s}: {util:.1%}")

    print("\nFigure 14: per-chunk density distribution (chunk 0)")
    data14 = figure14_distribution(masks, plans["gb_h"], chunk_index=0,
                                   chunk_size=cfg.chunk_size)
    print(render_gb_impact(data14))
    print("\n  384 filters, sorted by density:")
    print(ascii_curve(data14.filter_densities))
    print("  192 GB-H pairs, sorted by density (flatter = balanced):")
    print(ascii_curve(data14.pair_densities))

    print("\nMeasured speedup over Dense (this layer, exact simulation):")
    work = compute_chunk_work(data, cfg, need_counts=True)
    dense = simulate_dense(spec, cfg, data=data, work=work)
    for variant in ("no_gb", "gb_s", "gb_h"):
        result = simulate_sparten(spec, cfg, variant=variant, data=data, work=work)
        print(f"  {variant:6s}: {dense.cycles / result.cycles:.2f}x")


if __name__ == "__main__":
    main()
