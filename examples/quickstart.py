"""Quickstart: sparse inner join, sparse convolution, and a cycle report.

Run:  python examples/quickstart.py

Walks through the three layers of the library:
1. the SparseMap representation and its bit-mask inner join (Section 3.1),
2. the accelerator API running a sparse convolution (Section 3.2),
3. the cycle/energy report the simulator produces for that exact data.
"""

import numpy as np

from repro import SparTenAccelerator
from repro.nets.pruning import prune_filters
from repro.sim.config import HardwareConfig
from repro.tensor.inner_join import bitmask_dot, csr_dot
from repro.tensor.sparsemap import SparseMap


def sparse_dot_product_demo() -> None:
    print("=" * 64)
    print("1. Sparse vector-vector dot product: bit-mask inner join")
    print("=" * 64)
    rng = np.random.default_rng(0)
    n = 1024
    a = rng.standard_normal(n)
    a[rng.random(n) >= 0.35] = 0.0  # a pruned-filter-like vector
    b = rng.standard_normal(n)
    b[rng.random(n) >= 0.40] = 0.0  # a post-ReLU-activation-like vector

    value, stats = bitmask_dot(SparseMap.from_dense(a), SparseMap.from_dense(b))
    print(f"dot product          = {value:+.4f}  (numpy: {a @ b:+.4f})")
    print(f"useful multiplies    = {stats.multiplies} of {n} positions")
    print(f"join machinery steps = {stats.steps} (1 per multiply: ideal)")

    ia, ib = np.flatnonzero(a), np.flatnonzero(b)
    _, csr_stats = csr_dot(ia, a[ia], ib, b[ib])
    print(
        f"CSR merge baseline   = {csr_stats.steps} steps for the same "
        f"{csr_stats.multiplies} multiplies "
        f"({csr_stats.steps / max(1, csr_stats.multiplies):.1f}x the work)"
    )


def sparse_convolution_demo() -> SparTenAccelerator:
    print()
    print("=" * 64)
    print("2. Sparse convolution on the SparTen accelerator")
    print("=" * 64)
    rng = np.random.default_rng(1)
    # A small machine so the demo is instant; LARGE_CONFIG is the paper's.
    cfg = HardwareConfig(name="demo", n_clusters=8, units_per_cluster=16)
    acc = SparTenAccelerator(config=cfg, variant="gb_h")

    x = np.abs(rng.standard_normal((28, 28, 96)))
    x[rng.random(x.shape) < 0.6] = 0.0  # 40% dense activations
    filters = prune_filters(rng.standard_normal((64, 3, 3, 96)), 0.35, rng=rng)

    out, report = acc.conv2d(x, filters, padding=1, apply_relu=True)
    print(f"input  : {x.shape}, density {np.count_nonzero(x) / x.size:.2f}")
    print(f"filters: {filters.shape}, density "
          f"{np.count_nonzero(filters) / filters.size:.2f}")
    print(f"output : {out.shape}, density "
          f"{np.count_nonzero(out) / out.size:.2f} (after ReLU)")
    return acc, report, x, filters


def cycle_report_demo(acc, report, x, filters) -> None:
    print()
    print("=" * 64)
    print("3. The cycle and energy report")
    print("=" * 64)
    result = report.result
    b = result.breakdown
    print(f"cycles               = {result.cycles:,.0f}")
    print(f"useful MACs          = {b.nonzero_macs:,.0f}")
    print(f"zero-operand MACs    = {b.zero_macs:,.0f}  (two-sided: none)")
    print(f"intra-cluster idle   = {b.intra_loss:,.0f} MAC-cycles")
    print(f"inter-cluster idle   = {b.inter_loss:,.0f} MAC-cycles")
    dense_macs = x.shape[0] * x.shape[1] * filters.shape[0] * np.prod(filters.shape[1:])
    print(f"dense machine would issue ~{dense_macs:,.0f} MACs for this layer")
    print(f"compute energy       = {report.energy.compute_total / 1e6:.2f} uJ")
    print(f"memory energy        = {report.energy.memory_total / 1e6:.2f} uJ")


def main() -> None:
    sparse_dot_product_demo()
    acc, report, x, filters = sparse_convolution_demo()
    cycle_report_demo(acc, report, x, filters)


if __name__ == "__main__":
    main()
