"""End-to-end AlexNet-shaped inference: density propagation vs Table 3.

Run:  python examples/full_alexnet.py [--full]

Builds the five AlexNet conv layers with the real geometry (including the
3x3/2 max pools between them), prunes synthetic weights to the Table 3
filter densities, and runs an image through the whole pipeline. The
interesting output is the *propagated* activation density entering each
layer -- produced by actual ReLU and pooling, not asserted -- side by
side with the densities the paper measured (Table 3).

The default runs at half spatial scale for speed; ``--full`` runs the
real 224x224 geometry.
"""

import sys

import numpy as np

from repro.core.pipeline import NetworkPipeline, PipelineLayer
from repro.nets.models import alexnet
from repro.nets.pruning import prune_filters
from repro.sim.config import HardwareConfig


def build_layers(rng: np.random.Generator) -> list[PipelineLayer]:
    """The five AlexNet conv stages with their inter-layer pools."""
    table = alexnet()
    pools = {
        "Layer0": (3, 2),  # 55 -> 27
        "Layer1": (3, 2),  # 27 -> 13
        "Layer4": (3, 2),  # 13 -> 6 (into the FC stack)
    }
    layers = []
    for spec in table.layers:
        weights = prune_filters(
            rng.standard_normal(
                (spec.n_filters, spec.kernel, spec.kernel, spec.in_channels)
            ),
            spec.filter_density,
            rng=rng,
        )
        layers.append(
            PipelineLayer(
                weights,
                stride=spec.stride,
                padding=spec.padding,
                name=spec.name,
                pool=pools.get(spec.name),
            )
        )
    return layers


def main() -> None:
    full = "--full" in sys.argv
    scale = 1.0 if full else 0.5
    rng = np.random.default_rng(0)
    layers = build_layers(rng)

    side = int(224 * scale)
    image = np.abs(rng.standard_normal((side, side, 3)))  # dense RGB input
    cfg = HardwareConfig(name="e2e", n_clusters=8, units_per_cluster=16,
                         position_sample=100)
    pipe = NetworkPipeline(layers, config=cfg, variant="gb_s")

    print(f"AlexNet-shaped end-to-end inference at {side}x{side} "
          f"({'full' if full else 'half'} scale), GB-S with verified "
          "unshuffling\n")
    run = pipe.run(image, simulate=True)

    table = {spec.name: spec.input_density for spec in alexnet().layers}
    print(f"{'layer':8s} {'in density (propagated)':>24s} "
          f"{'Table 3':>8s} {'cycles':>12s}")
    for layer, density, result in zip(layers, run.layer_densities,
                                      run.layer_results):
        print(f"{layer.name:8s} {density:24.2f} {table[layer.name]:8.2f} "
              f"{result.cycles:12,.0f}")
    out_density = np.count_nonzero(run.output) / run.output.size
    print(f"\nfinal feature map: {run.output.shape}, density {out_density:.2f}")
    print("\nPropagated densities come out denser than Table 3's because the")
    print("paper's densities reflect trained feature selectivity (many units")
    print("stay off for a given image) while synthetic random weights spread")
    print("activation broadly -- the simulators therefore take densities from")
    print("Table 3 directly when reproducing the paper's figures, and measure")
    print("them (as here) when running real pipelines.")


if __name__ == "__main__":
    main()
