"""An inception module end to end: branches, ReLU sparsity, sparse concat.

Run:  python examples/inception_branches.py

Table 3's GoogLeNet rows are the branches of Inception 3a/5a. This
example runs the whole Inception 3a module (four parallel branches over
the same 28x28x192 input), measures each branch's output density, joins
the outputs through the sparse channel concat, and simulates each branch
layer at its *measured* density.
"""

import numpy as np

from repro.nets.inception import inception_3a
from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import LayerData, synthesize_layer
from repro.sim.config import SMALL_CONFIG
from repro.sim.sparten import simulate_sparten
from repro.tensor.sparsemap import SparseTensor3D, concat_channels


def main() -> None:
    module = inception_3a()
    rng = np.random.default_rng(0)
    x = np.abs(rng.standard_normal((28, 28, 192)))
    x[rng.random(x.shape) < 0.42] = 0.0  # Table 3: 58% dense input

    print("Inception 3a: 28x28x192 -> 28x28x256 (64 + 128 + 32 + 32)\n")
    out = module.forward(x, seed=0)
    splits = np.split(out, [64, 192, 224], axis=2)
    names = ("1x1 branch", "3x3 branch", "5x5 branch", "pool-proj")
    print(f"{'branch':12s} {'channels':>9s} {'out density':>12s}")
    for name, part in zip(names, splits):
        density = np.count_nonzero(part) / part.size
        print(f"{name:12s} {part.shape[2]:9d} {density:12.2f}")

    sparse_parts = [SparseTensor3D(p) for p in splits]
    joined = concat_channels(sparse_parts)
    dense_bits = out.size * 8
    print(f"\nsparse concat: {joined.channels} channels, "
          f"{joined.storage_bits():,} bits "
          f"(dense: {dense_bits:,} bits, "
          f"{dense_bits / joined.storage_bits():.2f}x reduction)")

    print("\nPer-branch-layer simulation (SparTen GB-H, small config,"
          " Table 3 densities):")
    cfg = SMALL_CONFIG.with_sampling(200, batch=1)
    for spec in module.branch_layers:
        result = simulate_sparten(spec, cfg, variant="gb_h", seed=0)
        print(f"  {spec.name:14s} cycles={result.cycles:10,.0f} "
              f"useful MACs={result.breakdown.nonzero_macs:12,.0f}")
    print("\n(the 5x5red rows are the collocation-pathology layers of"
          " Figure 8 -- see `python -m repro run fig8`)")


if __name__ == "__main__":
    main()
