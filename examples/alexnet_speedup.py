"""Reproduce Figure 7: AlexNet speedups across all eight architectures.

Run:  python examples/alexnet_speedup.py [--exact]

Compares Dense, One-sided, the three SparTen variants, and the three SCNN
variants on the paper's pruned AlexNet layers (Table 3 densities). With
``--exact`` the full-resolution simulation runs (minutes); the default
fast mode samples output positions (seconds) -- the *ratios* are stable.
"""

import sys

from repro.eval.experiments import speedup_figure
from repro.eval.reporting import render_speedups
from repro.nets.models import alexnet


def main() -> None:
    fast = "--exact" not in sys.argv
    mode = "fast (sampled)" if fast else "exact"
    print(f"Regenerating Figure 7 in {mode} mode...\n")

    fig = speedup_figure(alexnet(), fast=fast)
    print(render_speedups(fig, "Figure 7: AlexNet speedup over Dense"))

    geo = fig["geomean"]
    print()
    print("Paper's qualitative claims, checked on this run:")
    checks = [
        ("SparTen (GB-H) beats GB-S", geo["sparten"] > geo["sparten_gb_s"]),
        ("GB-S beats no-GB", geo["sparten_gb_s"] > geo["sparten_no_gb"]),
        ("no-GB beats One-sided", geo["sparten_no_gb"] > geo["one_sided"]),
        ("SCNN falls behind One-sided", geo["scnn"] < geo["one_sided"]),
        (
            "SCNN collapses on stride-4 Layer0",
            fig["layers"]["scnn"]["Layer0"] < 0.2,
        ),
        (
            "SCNN beats its one-sided/dense variants",
            geo["scnn"] > geo["scnn_one_sided"] > geo["scnn_dense"],
        ),
    ]
    for claim, holds in checks:
        print(f"  [{'ok' if holds else 'MISS'}] {claim}")


if __name__ == "__main__":
    main()
