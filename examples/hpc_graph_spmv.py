"""Sparse matrix-vector products on real graph structures (HPC claim).

Run:  python examples/hpc_graph_spmv.py

Section 1 positions SparTen as "a general sparse linear algebra
accelerator applicable to ... sparse HPC". This example runs SpMV over
graph Laplacians and a scale-free adjacency matrix (built with networkx)
through the accelerator, checks numerical exactness, and shows the
representation caveat the paper itself raises: at HPC densities the
pointer format stores smaller than SparTen's bit mask (Section 3.1's
crossover), even though the compute pipeline still works.
"""

import numpy as np

from repro.core.accelerator import SparTenAccelerator
from repro.sim.config import HardwareConfig
from repro.tensor.hpc import (
    grid_laplacian,
    matrix_density,
    representation_verdict,
    scale_free_adjacency,
)


def run_spmv(name: str, matrix: np.ndarray, acc: SparTenAccelerator) -> None:
    rng = np.random.default_rng(1)
    x = rng.standard_normal(matrix.shape[1])
    out, report = acc.matvec(matrix, x)
    assert np.allclose(out, matrix @ x), "SpMV mismatch"
    verdict = representation_verdict(matrix)
    print(f"{name:24s} n={matrix.shape[0]:4d}  density={matrix_density(matrix):7.4f}"
          f"  useful MACs={report.useful_macs:8,.0f}"
          f"  storage winner={verdict['winner']}")


def main() -> None:
    print("SpMV on structured HPC operands through SparTen\n")
    acc = SparTenAccelerator(
        config=HardwareConfig(name="hpc", n_clusters=4, units_per_cluster=8,
                              chunk_size=64)
    )
    run_spmv("grid Laplacian (PDE)", grid_laplacian(12), acc)
    run_spmv("scale-free adjacency", scale_free_adjacency(144, seed=3), acc)

    print("\nJacobi iteration on the grid Laplacian (solver inner loop):")
    lap = grid_laplacian(10).astype(np.float64)
    a = lap + np.eye(lap.shape[0]) * 4.0  # diagonally dominant system
    b = np.ones(a.shape[0])
    d = np.diag(a)
    off = a - np.diag(d)
    x = np.zeros_like(b)
    for it in range(12):
        y, _ = acc.matvec(off, x)
        x = (b - y) / d
        residual = np.linalg.norm(a @ x - b)
        if it % 3 == 0:
            print(f"  iter {it:2d}: residual = {residual:.3e}")
    print(f"  final  : residual = {np.linalg.norm(a @ x - b):.3e}")
    print("\nEvery multiply ran through the sparse inner-join pipeline;")
    print("the bit-mask representation pays a storage premium at this")
    print("density (see `python -m repro run hpc`), which is exactly the")
    print("crossover Section 3.1 of the paper derives.")


if __name__ == "__main__":
    main()
