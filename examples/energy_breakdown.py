"""Reproduce Figure 13: compute/memory energy with zero/non-zero splits.

Run:  python examples/energy_breakdown.py [network]

Shows the paper's energy story for one network (default AlexNet):
Dense burns most of its compute energy on zero operands; One-sided
removes part of that; the SparTen variants remove all of it but pay a
higher per-op cost (buffers + inner join), landing around 2x Dense's
compute energy while cutting memory energy below both baselines.
"""

import sys

from repro.eval.experiments import energy_figure, network_by_name
from repro.nets.models import alexnet


def bar(fraction: float, scale: float = 40.0) -> str:
    return "#" * max(0, int(round(fraction * scale)))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    network = network_by_name(name)
    print(f"Regenerating Figure 13 for {network.name} (fast mode)...\n")
    fig = energy_figure(networks=(network,), fast=True)
    rows = fig[network.name]

    print("COMPUTE energy (normalised to Dense-naive; # = 2.5%)")
    for scheme, comps in rows.items():
        total = comps["compute_nonzero"] + comps["compute_zero"]
        print(f"  {scheme:13s} |{bar(comps['compute_nonzero'])}"
              f"{bar(comps['compute_zero']).replace('#', 'o')}| "
              f"{total:.2f} (zero: {comps['compute_zero']:.2f})")
    print("  (# = non-zero component, o = zero component)\n")

    print("MEMORY energy (normalised to Dense; # = 2.5%)")
    for scheme, comps in rows.items():
        total = comps["memory_nonzero"] + comps["memory_zero"]
        print(f"  {scheme:13s} |{bar(comps['memory_nonzero'])}"
              f"{bar(comps['memory_zero']).replace('#', 'o')}| "
              f"{total:.2f} (zero: {comps['memory_zero']:.2f})")

    dense = rows["dense"]
    sparten = rows["sparten"]
    one = rows["one_sided"]
    c = lambda r: r["compute_nonzero"] + r["compute_zero"]  # noqa: E731
    m = lambda r: r["memory_nonzero"] + r["memory_zero"]  # noqa: E731
    print("\nHeadline relations on this run (paper's targets in parens):")
    print(f"  SparTen compute vs Dense      : {c(sparten) / c(dense):.2f}x (~2x)")
    print(f"  One-sided / SparTen compute   : {c(one) / c(sparten):.2f}x (~1.5x)")
    print(f"  Dense / SparTen memory        : {m(dense) / m(sparten):.2f}x (~1.4x)")
    print(f"  One-sided / SparTen memory    : {m(one) / m(sparten):.2f}x (~1.3x)")


if __name__ == "__main__":
    main()
