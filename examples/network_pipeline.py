"""End-to-end sparse inference with GB-S's offline weight unshuffling.

Run:  python examples/network_pipeline.py

Builds a small 4-layer CNN, prunes it, and runs an image through the
SparTen pipeline: ReLU creates activation sparsity layer by layer, the
output collector converts to the sparse representation on the fly, and
GB-S's density sort is statically "unshuffled" into the next layer's
weights -- the pipeline verifies the network function is bit-identical.
"""

import numpy as np

from repro.core.pipeline import NetworkPipeline, PipelineLayer
from repro.nets.pruning import prune_filters
from repro.sim.config import HardwareConfig


def main() -> None:
    rng = np.random.default_rng(0)
    cfg = HardwareConfig(name="pipe", n_clusters=4, units_per_cluster=8)

    layers = [
        PipelineLayer(
            prune_filters(rng.standard_normal((32, 3, 3, 8)), 0.6, rng=rng),
            padding=1, name="conv1",
        ),
        PipelineLayer(
            prune_filters(rng.standard_normal((48, 3, 3, 32)), 0.45, rng=rng),
            padding=1, name="conv2",
        ),
        PipelineLayer(
            prune_filters(rng.standard_normal((64, 3, 3, 48)), 0.35, rng=rng),
            padding=1, name="conv3",
        ),
        PipelineLayer(
            prune_filters(rng.standard_normal((64, 3, 3, 64)), 0.30, rng=rng),
            stride=2, padding=1, name="conv4_s2",  # any stride works
        ),
    ]
    image = np.abs(rng.standard_normal((16, 16, 8)))  # dense input image

    pipe = NetworkPipeline(layers, config=cfg, variant="gb_s")
    print("Offline pass: sorting filters by density + unshuffling weights...")
    banks = pipe.prepare_gb_s_weights()
    for layer, bank in zip(layers, banks):
        d = (np.asarray(layer.weights) != 0).reshape(bank.shape[0], -1).mean(axis=1)
        print(f"  {layer.name:9s}: filter densities "
              f"{d.min():.2f}..{d.max():.2f} -> sorted groups for the clusters")

    print("\nRunning inference (GB-S path, verified against reference)...")
    run = pipe.run(image, simulate=True)

    print(f"\n{'layer':10s} {'in density':>10s} {'cycles':>12s} "
          f"{'useful MACs':>12s} {'sparse bits':>12s}")
    for layer, result, density in zip(layers, run.layer_results, run.layer_densities):
        print(
            f"{layer.name:10s} {density:10.2f} {result.cycles:12,.0f} "
            f"{result.breakdown.nonzero_macs:12,.0f} "
            f"{result.traffic.overhead_bytes * 8:12,.0f}"
        )
    out_density = np.count_nonzero(run.output) / run.output.size
    print(f"\nfinal output: {run.output.shape}, density {out_density:.2f}")
    print(f"sparse footprint of the final map: "
          f"{pipe.sparse_footprint(run.output):,} bits "
          f"(dense: {run.output.size * 8:,} bits)")
    print("\nGB-S unshuffling verified: shuffled execution == reference, "
          "layer by layer.")


if __name__ == "__main__":
    main()
