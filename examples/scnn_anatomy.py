"""Anatomy of the SCNN comparison: where the Cartesian product pays.

Run:  python examples/scnn_anatomy.py

Executes the same sparse layer on the functional SCNN PE (Cartesian
product + per-product address calculation + crossbar route) and on
SparTen's inner-join machinery, then lines the operation counts up
against each other -- the paper's Section 2.1.1 critique, measured on a
live machine rather than argued.
"""

import numpy as np

from repro.arch.scnn_pe import run_scnn_functional
from repro.nets.layers import ConvLayerSpec
from repro.nets.synthesis import synthesize_layer
from repro.sim.config import HardwareConfig
from repro.sim.kernels import compute_chunk_work
from repro.sim.scnn import simulate_scnn
from repro.sim.sparten import simulate_sparten
from repro.sim.dense import simulate_dense


def main() -> None:
    spec = ConvLayerSpec(
        name="anatomy", in_height=12, in_width=12, in_channels=32,
        kernel=3, n_filters=64, padding=1,
        input_density=0.4, filter_density=0.35,
    )
    cfg = HardwareConfig(
        name="anatomy", n_clusters=4, units_per_cluster=16,
        scnn_pe_grid=(2, 2), scnn_max_tile=4,
    )
    data = synthesize_layer(spec, seed=0)
    work = compute_chunk_work(data, cfg, need_counts=True)

    print("One sparse layer, two machines "
          f"({spec.in_height}x{spec.in_width}x{spec.in_channels}, "
          f"{spec.n_filters} filters, densities "
          f"{spec.input_density:.2f}/{spec.filter_density:.2f})\n")

    # --- SCNN, functionally. -------------------------------------------------
    out, stats = run_scnn_functional(
        data.input_map, data.filters, tile=4, padding=spec.padding
    )
    print("SCNN (Cartesian product, functional execution):")
    print(f"  products formed          {stats.products:10,}")
    print(f"  address calculations     {stats.address_calculations:10,}"
          "   <- one per product")
    print(f"  crossbar routes          {stats.crossbar_routes:10,}"
          "   <- one per surviving product")
    print(f"  discarded at the edges   {stats.discarded_products:10,}")
    print(f"  accumulator peak         {stats.accumulator_peak:10,} of 1024")

    # --- SparTen. ---------------------------------------------------------------
    sparten = simulate_sparten(spec, cfg, variant="gb_h", data=data, work=work)
    out_cells = spec.out_positions * spec.n_filters
    chunk_broadcasts = sparten.extras["barriers"]
    print("\nSparTen (inner join, one output cell per unit):")
    print(f"  useful MACs              {sparten.breakdown.nonzero_macs:10,.0f}")
    print(f"  address calculations     {out_cells:10,}   <- one per output cell")
    print(f"  permute-network routes   {0 if not sparten.extras['permute_cycles'] else '(hidden)':>10}"
          "   (GB-H ships partials once per chunk, no crossbar)")
    print(f"  chunk barriers           {chunk_broadcasts:10,.0f}"
          "   (per output-position group)")

    # --- The scoreboard. ----------------------------------------------------------
    dense = simulate_dense(spec, cfg, data=data, work=work)
    scnn = simulate_scnn(spec, cfg, variant="two", data=data)
    print("\nCycle scoreboard (equal 64-MAC machines):")
    print(f"  dense    {dense.cycles:10,.0f} cycles")
    print(f"  scnn     {scnn.cycles:10,.0f} cycles "
          f"({dense.cycles / scnn.cycles:.2f}x)")
    print(f"  sparten  {sparten.cycles:10,.0f} cycles "
          f"({dense.cycles / sparten.cycles:.2f}x)")
    ratio = stats.address_calculations / out_cells
    print(f"\nSCNN computed {ratio:.0f}x more addresses than SparTen for the "
          "same outputs --")
    print("that machinery (plus barriers and array underfill) is the gap "
          "the scoreboard shows.")


if __name__ == "__main__":
    main()
