"""Generality beyond unit-stride CNNs: FC layers, strided conv, HPC GEMM.

Run:  python examples/sparse_gemm.py

SCNN's Cartesian-product trick only works for unit-stride convolutions;
SparTen's inner join is a general sparse linear-algebra primitive
(Sections 1, 3.2). This example exercises the three cases the paper
calls out:

1. a stride-2 ResNet-style convolution,
2. an LSTM-gate-sized fully-connected layer (matrix-vector),
3. an HPC-grade (99%-sparse) matrix-matrix product via the BLAS-like
   interface.
"""

import numpy as np

from repro.core.accelerator import SparTenAccelerator
from repro.nets.models import lstm_fc_layer, strided_resnet_layer
from repro.nets.pruning import prune_filters
from repro.nets.synthesis import synthesize_layer
from repro.sim.config import HardwareConfig
from repro.sim.scnn import simulate_scnn
from repro.sim.sparten import simulate_sparten


def strided_convolution() -> None:
    print("=" * 64)
    print("1. Non-unit-stride convolution (ResNet-style, stride 2)")
    print("=" * 64)
    spec = strided_resnet_layer()
    cfg = HardwareConfig(name="gen", n_clusters=8, units_per_cluster=16)
    data = synthesize_layer(spec, seed=0)
    sparten = simulate_sparten(spec, cfg, variant="gb_h", data=data)
    scnn = simulate_scnn(spec, cfg, variant="two", data=data)
    print(f"layer: {spec.name} "
          f"({spec.in_height}x{spec.in_width}x{spec.in_channels}, stride 2)")
    print(f"SparTen cycles: {sparten.cycles:,.0f} "
          f"(zero-operand MACs: {sparten.breakdown.zero_macs:,.0f})")
    waste = scnn.breakdown.zero_macs / (
        scnn.breakdown.zero_macs + scnn.breakdown.nonzero_macs
    )
    print(f"SCNN cycles:    {scnn.cycles:,.0f} "
          f"({waste:.0%} of its Cartesian products land between outputs)")


def fc_layer() -> None:
    print()
    print("=" * 64)
    print("2. Fully-connected layer (LSTM gate, matrix-vector)")
    print("=" * 64)
    rng = np.random.default_rng(2)
    fc = lstm_fc_layer()
    cfg = HardwareConfig(name="gen", n_clusters=8, units_per_cluster=16)
    acc = SparTenAccelerator(config=cfg)
    # A scaled-down instance so the demo is instant.
    n_in, n_out = 512, 256
    weights = prune_filters(
        rng.standard_normal((n_out, 1, 1, n_in)), fc.weight_density, rng=rng
    ).reshape(n_out, n_in)
    x = rng.standard_normal(n_in)
    x[rng.random(n_in) >= fc.input_density] = 0.0
    out, report = acc.matvec(weights, x)
    assert np.allclose(out, weights @ x)
    print(f"y = Wx with W {weights.shape} at density "
          f"{np.count_nonzero(weights) / weights.size:.2f}, "
          f"x density {np.count_nonzero(x) / x.size:.2f}")
    print(f"numerically exact; cycles: {report.cycles:,.0f}, "
          f"useful MACs: {report.useful_macs:,.0f} "
          f"of {weights.size:,} dense slots")


def hpc_gemm() -> None:
    print()
    print("=" * 64)
    print("3. HPC-grade sparse matrix-matrix product (99% zeros)")
    print("=" * 64)
    rng = np.random.default_rng(3)
    cfg = HardwareConfig(name="gen", n_clusters=4, units_per_cluster=16)
    acc = SparTenAccelerator(config=cfg)
    a = rng.standard_normal((64, 512))
    a[rng.random(a.shape) < 0.99] = 0.0
    b = rng.standard_normal((512, 8))
    b[rng.random(b.shape) < 0.5] = 0.0
    out, report = acc.matmul(a, b)
    assert np.allclose(out, a @ b)
    print(f"C = A x B with A {a.shape} at density "
          f"{np.count_nonzero(a) / a.size:.3f}")
    print(f"numerically exact; cycles: {report.cycles:,.0f}, "
          f"useful MACs: {report.useful_macs:,.0f} "
          f"of {a.size * b.shape[1]:,} dense slots")
    print("(note: at HPC densities a pointer format stores smaller --")
    print(" see benchmarks/bench_storage_analysis.py for the crossover)")


def main() -> None:
    strided_convolution()
    fc_layer()
    hpc_gemm()


if __name__ == "__main__":
    main()
